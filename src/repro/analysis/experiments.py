"""Standard experiment setups for the paper's evaluation (§6.1).

The paper fixes one hyperparameter set per domain ("the same random
search Hyperparameter Generator with the same initial random seed") and
reuses it across every policy.  These helpers pin this repository's
equivalents:

* supervised: the CIFAR-10 workload, 100 configurations from random
  seed 17, 4 machines (the private-cluster setup);
* reinforcement: the LunarLander workload, 100 configurations from
  random seed 11, 15 machines (the AWS setup).

The generator seeds were chosen (see DESIGN.md) so the fixed
configuration sets exhibit the qualitative regime the paper reports:
achievers exist but none dominates the first machine batch, slow
"overtaker" achievers appear before fast ones, and every policy can
reach the target.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..framework.experiment import ExperimentResult, ExperimentSpec
from ..generators.random_gen import RandomGenerator
from ..policies.base import SchedulingPolicy
from ..sim.runner import run_simulation
from ..workloads.base import Workload
from ..workloads.cifar10 import Cifar10Workload
from ..workloads.lunarlander import LunarLanderWorkload

__all__ = [
    "SL_GENERATOR_SEED",
    "RL_GENERATOR_SEED",
    "SL_NUM_MACHINES",
    "RL_NUM_MACHINES",
    "NUM_CONFIGS",
    "standard_sl_workload",
    "standard_rl_workload",
    "standard_configs",
    "standard_spec",
    "run_standard_experiment",
    "repeat_experiment",
]

SL_GENERATOR_SEED = 17
RL_GENERATOR_SEED = 11
SL_NUM_MACHINES = 4
RL_NUM_MACHINES = 15
NUM_CONFIGS = 100


def standard_sl_workload() -> Cifar10Workload:
    """The paper's supervised workload (synthetic CIFAR-10)."""
    return Cifar10Workload()


def standard_rl_workload() -> LunarLanderWorkload:
    """The paper's RL workload (synthetic LunarLander)."""
    return LunarLanderWorkload()


def standard_configs(
    workload: Workload, num_configs: int = NUM_CONFIGS, seed: Optional[int] = None
) -> List[Dict[str, Any]]:
    """The fixed configuration set for a workload's domain."""
    if seed is None:
        seed = (
            SL_GENERATOR_SEED
            if workload.domain.kind == "supervised"
            else RL_GENERATOR_SEED
        )
    generator = RandomGenerator(workload.space, seed=seed, max_configs=num_configs)
    return [generator.create_job()[1] for _ in range(num_configs)]


def standard_spec(
    workload: Workload,
    num_machines: Optional[int] = None,
    num_configs: int = NUM_CONFIGS,
    seed: int = 0,
    **overrides: Any,
) -> ExperimentSpec:
    """The standard :class:`ExperimentSpec` for a workload's domain."""
    if num_machines is None:
        num_machines = (
            SL_NUM_MACHINES
            if workload.domain.kind == "supervised"
            else RL_NUM_MACHINES
        )
    return ExperimentSpec(
        num_machines=num_machines,
        num_configs=num_configs,
        seed=seed,
        **overrides,
    )


def run_standard_experiment(
    workload: Workload,
    policy: SchedulingPolicy,
    seed: int = 0,
    num_machines: Optional[int] = None,
    num_configs: int = NUM_CONFIGS,
    configs: Optional[Sequence[Dict[str, Any]]] = None,
    predictor: Optional[Any] = None,
    **spec_overrides: Any,
) -> ExperimentResult:
    """One simulated experiment under the standard setup."""
    if configs is None:
        configs = standard_configs(workload, num_configs)
    spec = standard_spec(
        workload,
        num_machines=num_machines,
        num_configs=num_configs,
        seed=seed,
        **spec_overrides,
    )
    return run_simulation(
        workload, policy, spec=spec, configs=configs, predictor=predictor
    )


def repeat_experiment(
    workload: Workload,
    policy_factory: Callable[[], SchedulingPolicy],
    repeats: int,
    **kwargs: Any,
) -> List[ExperimentResult]:
    """Repeat the standard experiment with distinct training-noise
    seeds (the paper repeats 10x supervised, 5x RL, §6.1)."""
    return [
        run_standard_experiment(workload, policy_factory(), seed=seed, **kwargs)
        for seed in range(repeats)
    ]
