"""Terminal rendering of curves and distributions.

The paper's figures are line plots and CDFs; this repository's benches
and examples run in terminals, so this module renders compact ASCII
versions: sparklines for single curves and multi-series scatter charts
for comparisons.  Pure-text output keeps the benches dependency-free
and diffable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["sparkline", "line_chart", "histogram"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a sequence as a one-line block-character sparkline.

    Args:
        values: the series to render.
        width: optional output width; the series is resampled to it.

    Returns:
        A string of block characters, e.g. ``▁▂▄▆███``.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot render an empty series")
    if width is not None:
        if width < 1:
            raise ValueError("width must be positive")
        positions = np.linspace(0, arr.size - 1, width)
        arr = np.interp(positions, np.arange(arr.size), arr)
    low, high = float(arr.min()), float(arr.max())
    if high - low < 1e-12:
        return _BLOCKS[0] * arr.size
    scaled = (arr - low) / (high - low)
    indices = np.minimum(
        (scaled * len(_BLOCKS)).astype(int), len(_BLOCKS) - 1
    )
    return "".join(_BLOCKS[i] for i in indices)


def line_chart(
    series: Dict[str, Sequence[float]],
    width: int = 72,
    height: int = 16,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render one or more series as a multi-line ASCII chart.

    Each series is drawn with the first letter of its name; collisions
    show the later series' marker.  Axes carry min/max annotations.

    Args:
        series: name -> y-values (x is the index, rescaled to width).
        width, height: plot-area size in characters.
        y_min, y_max: fixed y-range; defaults to the data range.
        y_label, x_label: axis annotations.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("chart too small to render")
    all_values = np.concatenate(
        [np.asarray(list(v), dtype=float) for v in series.values()]
    )
    if all_values.size == 0:
        raise ValueError("cannot render empty series")
    low = float(all_values.min()) if y_min is None else y_min
    high = float(all_values.max()) if y_max is None else y_max
    if high <= low:
        high = low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            continue
        marker = name[0]
        positions = np.linspace(0, arr.size - 1, width)
        resampled = np.interp(positions, np.arange(arr.size), arr)
        for x, value in enumerate(resampled):
            frac = (value - low) / (high - low)
            frac = min(max(frac, 0.0), 1.0)
            y = height - 1 - int(round(frac * (height - 1)))
            grid[y][x] = marker

    lines: List[str] = []
    top_label = f"{high:.3g}"
    bottom_label = f"{low:.3g}"
    margin = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin - 1) + "┤"
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin - 1) + "┤"
        else:
            prefix = " " * (margin - 1) + "│"
        lines.append(prefix + "".join(row))
    lines.append(" " * (margin - 1) + "└" + "─" * width)
    legend = "  ".join(f"{name[0]}={name}" for name in series)
    footer = legend
    if x_label:
        footer += f"   (x: {x_label})"
    if y_label:
        footer += f"   (y: {y_label})"
    lines.append(" " * margin + footer)
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    label: str = "",
) -> str:
    """Render a horizontal-bar histogram."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot render an empty sample")
    if bins < 1 or width < 1:
        raise ValueError("bins and width must be positive")
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [label] if label else []
    for count, left, right in zip(counts, edges[:-1], edges[1:]):
        bar = "█" * int(round(width * count / peak))
        lines.append(f"{left:10.3g} – {right:10.3g} |{bar} {count}")
    return "\n".join(lines)
