"""Per-figure data extraction for the paper's evaluation.

Every function returns plain data (arrays / dicts) that the benches
print as the rows/series of the corresponding paper figure.  Keeping
the extraction here means tests can validate the figure *shapes*
independently of the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.allocation import slot_curves
from ..core.pop import POPPolicy
from ..curves.predictor import CurvePredictor
from ..framework.experiment import ExperimentResult
from ..metrics.stats import BoxStats, box_stats, ecdf
from ..workloads.base import Workload
from .experiments import standard_configs

__all__ = [
    "config_curves",
    "final_metric_cdf",
    "find_overtake_pair",
    "prediction_with_confidence",
    "InstrumentedPOPPolicy",
    "job_duration_cdf",
    "time_to_target_stats",
    "promising_ratio_timeline",
    "suspend_overhead_stats",
    "SuspendStats",
]


def config_curves(
    workload: Workload,
    n_configs: int,
    n_epochs: Optional[int] = None,
    seed: int = 0,
) -> List[List[float]]:
    """Full learning curves of the first ``n_configs`` standard
    configurations (Fig 1 / Fig 8 data)."""
    configs = standard_configs(workload, num_configs=max(n_configs, 1))[:n_configs]
    if n_epochs is None:
        n_epochs = workload.domain.max_epochs
    curves = []
    for config in configs:
        run = workload.create_run(config, seed=seed)
        curves.append([run.step().metric for _ in range(n_epochs)])
    return curves


def final_metric_cdf(
    workload: Workload, n_configs: int, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of final metrics over random configurations
    (Fig 2a data)."""
    curves = config_curves(workload, n_configs, seed=seed)
    finals = [curve[-1] for curve in curves]
    return ecdf(finals)


def find_overtake_pair(
    workload: Workload, pool_size: int = 100, seed: int = 0
) -> Optional[Tuple[List[float], List[float]]]:
    """Find two configurations A, B where A leads through the early
    epochs but B has the higher final value (Fig 2b).

    Returns (curve_A, curve_B), or None if the pool has no such pair.
    """
    curves = config_curves(workload, pool_size, seed=seed)
    half = workload.domain.max_epochs // 3
    best: Optional[Tuple[float, List[float], List[float]]] = None
    for i, a in enumerate(curves):
        for b in curves[i + 1 :]:
            first, second = (a, b) if a[half] > b[half] else (b, a)
            if second[-1] > first[-1] + 0.01 and first[half] > second[half] + 0.01:
                margin = (first[half] - second[half]) + (second[-1] - first[-1])
                if best is None or margin > best[0]:
                    best = (margin, first, second)
    if best is None:
        return None
    return best[1], best[2]


def prediction_with_confidence(
    workload: Workload,
    config: Dict[str, Any],
    predictor: CurvePredictor,
    observe_epochs: int,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Observed prefix + predicted mean/std over the remaining horizon
    (Fig 2c / Fig 3 data), in raw metric units."""
    run = workload.create_run(config, seed=seed)
    full = [run.step().metric for _ in range(workload.domain.max_epochs)]
    prefix_norm = [workload.domain.normalize(v) for v in full[:observe_epochs]]
    n_future = workload.domain.max_epochs - observe_epochs
    prediction = predictor.predict(prefix_norm, n_future)

    def denorm(arr: np.ndarray) -> np.ndarray:
        domain = workload.domain
        if not domain.normalizes:
            return arr
        return arr * (domain.r_max - domain.r_min) + domain.r_min

    return {
        "observed": np.asarray(full[:observe_epochs]),
        "true_future": np.asarray(full[observe_epochs:]),
        "horizon": prediction.horizon,
        "mean": denorm(prediction.mean),
        "std": prediction.std
        * ((workload.domain.r_max - workload.domain.r_min)
           if workload.domain.normalizes else 1.0),
    }


class InstrumentedPOPPolicy(POPPolicy):
    """POP that records its allocation state at every reclassification.

    Each record is ``(time, confidences, threshold, promising_slots)``
    — the raw material of Fig 4a/4b (desired vs deserved slot curves at
    a moment in time) and of threshold-evolution analyses.
    """

    name = "pop"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.allocation_log: List[Tuple[float, List[float], float, int]] = []

    def _reclassify_all(self) -> None:
        super()._reclassify_all()
        confidences = [
            job.confidence
            for job in self.ctx.job_manager.active_jobs()
            if job.confidence is not None
        ]
        self.allocation_log.append(
            (self.ctx.now(), confidences, self.threshold, self.promising_slots)
        )

    def slot_curves_at(
        self, timestamp: float, grid_points: int = 101
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Desired/deserved slot curves from the last reclassification
        at or before ``timestamp`` (Fig 4a/4b)."""
        candidates = [rec for rec in self.allocation_log if rec[0] <= timestamp]
        if not candidates:
            return None
        _, confidences, _, _ = candidates[-1]
        return slot_curves(
            confidences,
            total_slots=self.ctx.resource_manager.num_machines,
            grid_points=grid_points,
        )


def job_duration_cdf(result: ExperimentResult) -> Tuple[np.ndarray, np.ndarray]:
    """CDF of per-job total training durations (Fig 6 data)."""
    durations = [job.total_training_time for job in result.jobs if job.history]
    return ecdf(durations)


def time_to_target_stats(results: Sequence[ExperimentResult]) -> BoxStats:
    """Box-plot stats of time-to-target across repeats (Fig 7 / Fig 9).

    Runs that never reached the target count as their full duration —
    a conservative, explicit convention (the paper's runs all reached).
    """
    times = [
        r.time_to_target if r.time_to_target is not None else r.finished_at
        for r in results
    ]
    return box_stats(times)


def promising_ratio_timeline(
    result: ExperimentResult, bucket_seconds: float = 300.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Ratio of promising to active jobs over time (Fig 4c data).

    Returns (bucket_end_times, mean_ratio_per_bucket).
    """
    timeline = result.pool_timeline
    if not timeline:
        return np.array([]), np.array([])
    end = max(snapshot.timestamp for snapshot in timeline)
    edges = np.arange(bucket_seconds, end + bucket_seconds, bucket_seconds)
    times, ratios = [], []
    for edge in edges:
        bucket = [
            s for s in timeline if edge - bucket_seconds <= s.timestamp < edge
        ]
        if not bucket:
            continue
        values = [s.promising / s.active for s in bucket if s.active > 0]
        if values:
            times.append(edge)
            ratios.append(float(np.mean(values)))
    return np.asarray(times), np.asarray(ratios)


@dataclass(frozen=True)
class SuspendStats:
    """Suspend-overhead summary (§6.2.3 / Fig 10)."""

    count: int
    latency_mean: float
    latency_std: float
    latency_p95: float
    latency_max: float
    size_mean: float
    size_std: float
    size_p95: float
    size_max: float


def suspend_overhead_stats(results: Sequence[ExperimentResult]) -> SuspendStats:
    """Aggregate suspend latency/size over experiments' snapshot logs."""
    latencies = [s.latency for r in results for s in r.snapshots]
    sizes = [s.size_bytes for r in results for s in r.snapshots]
    if not latencies:
        raise ValueError("no suspends recorded in the given results")
    lat = np.asarray(latencies)
    size = np.asarray(sizes)
    return SuspendStats(
        count=lat.size,
        latency_mean=float(lat.mean()),
        latency_std=float(lat.std()),
        latency_p95=float(np.percentile(lat, 95)),
        latency_max=float(lat.max()),
        size_mean=float(size.mean()),
        size_std=float(size.std()),
        size_p95=float(np.percentile(size, 95)),
        size_max=float(size.max()),
    )
