"""Per-configuration feature vectors shared by training and serving.

The environment (:mod:`repro.sim.env`) and the frozen SAP
(:mod:`repro.policies.learned`) both describe a configuration's state
through :func:`feature_matrix` over the same
:class:`ConfigStateArrays`, so there is no train/serve skew: what the
agent saw during simulator rollouts is exactly what the policy
computes from live :class:`~repro.framework.job.Job` state.

The features are deliberately cheap — normalized curve summaries and
closed-form ERT/confidence *proxies* (linear extrapolation of the
last window's gain), not the least-squares curve predictor — so the
learned policy adds microseconds, not prediction latency, per
decision.  All features live in ``[-1, 1]``.

Feature vector (``FEATURE_NAMES`` order):

* ``progress`` — epochs completed / max epochs.
* ``last`` — last observed normalized metric (0 before any epoch).
* ``best`` — best observed normalized metric so far.
* ``gain`` — normalized-metric gain over the last eval window,
  scaled by :data:`GAIN_SCALE` and clipped to [-1, 1].
* ``ert`` — expected-remaining-training proxy: epochs needed to reach
  the target at the current per-window gain, as a fraction of max
  epochs (0 = target met, 1 = unreachable at current speed; 0.5 for
  unstarted configurations — unknown, not hopeless).
* ``confidence`` — logistic confidence that the linearly-extrapolated
  final metric clears the target (0.5 for unstarted configurations).
* ``slot_share`` — fraction of total cluster-time spent on this
  configuration.
* ``time_left`` — remaining experiment horizon fraction.
* ``bias`` — constant 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

import numpy as np

from ..workloads.base import DomainSpec

__all__ = [
    "FEATURE_NAMES",
    "FEATURE_VERSION",
    "ConfigStateArrays",
    "arrays_from_jobs",
    "feature_matrix",
    "feature_schema",
]

FEATURE_NAMES = (
    "progress",
    "last",
    "best",
    "gain",
    "ert",
    "confidence",
    "slot_share",
    "time_left",
    "bias",
)
FEATURE_VERSION = 1

#: Per-window normalized gain multiplied by this before clipping.
GAIN_SCALE = 5.0
#: Logistic temperature for the confidence proxy.
CONFIDENCE_TEMPERATURE = 0.05
_EPS = 1e-9


def feature_schema() -> Dict[str, Any]:
    """The schema frozen into policy artifacts (drift guard)."""
    return {"version": FEATURE_VERSION, "names": list(FEATURE_NAMES)}


@dataclass
class ConfigStateArrays:
    """Vectorized per-configuration scheduler state.

    All metric values are normalized to [0, 1]; ``prev`` is the
    observed value one eval window before ``last`` (0 when the
    configuration has not yet trained a full window).
    """

    epochs: np.ndarray    # (n,) int epochs completed
    last: np.ndarray      # (n,) last observed normalized metric
    prev: np.ndarray      # (n,) normalized metric one window ago
    best: np.ndarray      # (n,) best observed normalized metric
    invested: np.ndarray  # (n,) seconds of training time spent
    elapsed: float        # experiment clock, seconds
    tmax: float           # experiment horizon, seconds
    slots: int            # cluster size
    window: int           # eval boundary b (epochs per decision)
    max_epochs: int
    norm_target: float

    @property
    def n_configs(self) -> int:
        return int(self.epochs.shape[0])


def feature_matrix(state: ConfigStateArrays) -> np.ndarray:
    """The (n_configs, len(FEATURE_NAMES)) feature matrix."""
    epochs = np.asarray(state.epochs, dtype=float)
    n = epochs.shape[0]
    started = epochs > 0

    progress = epochs / float(state.max_epochs)
    gain_raw = np.where(started, state.last - state.prev, 0.0)
    gain = np.clip(gain_raw * GAIN_SCALE, -1.0, 1.0)

    need = np.maximum(state.norm_target - state.last, 0.0)
    per_epoch_gain = np.maximum(gain_raw, _EPS) / float(state.window)
    epochs_needed = need / per_epoch_gain
    remaining = np.maximum(float(state.max_epochs) - epochs, 0.0)
    reachable = (gain_raw > _EPS) & (epochs_needed <= remaining)
    ert = np.where(
        need <= 0.0,
        0.0,
        np.where(
            reachable,
            np.clip(epochs_needed / float(state.max_epochs), 0.0, 1.0),
            1.0,
        ),
    )
    ert = np.where(started, ert, 0.5)

    projected = np.minimum(
        state.last + np.maximum(gain_raw, 0.0) * remaining / float(state.window),
        1.0,
    )
    confidence = 1.0 / (
        1.0
        + np.exp(-(projected - state.norm_target) / CONFIDENCE_TEMPERATURE)
    )
    confidence = np.where(started, confidence, 0.5)

    denominator = max(state.elapsed * state.slots, _EPS)
    slot_share = np.clip(state.invested / denominator, 0.0, 1.0)
    time_left = float(np.clip(1.0 - state.elapsed / max(state.tmax, _EPS),
                              0.0, 1.0))

    features = np.empty((n, len(FEATURE_NAMES)))
    features[:, 0] = progress
    features[:, 1] = state.last
    features[:, 2] = state.best
    features[:, 3] = gain
    features[:, 4] = ert
    features[:, 5] = confidence
    features[:, 6] = slot_share
    features[:, 7] = time_left
    features[:, 8] = 1.0
    return features


def _normalize(domain: DomainSpec, values: np.ndarray) -> np.ndarray:
    if not domain.normalizes:
        return np.clip(values, 0.0, 1.0)
    from ..metrics.stats import minmax_normalize

    return minmax_normalize(values, domain.r_min, domain.r_max)


def arrays_from_jobs(
    jobs: Sequence[Any],
    domain: DomainSpec,
    elapsed: float,
    tmax: float,
    slots: int,
    target: float,
) -> ConfigStateArrays:
    """Build the state arrays from live Job objects (serve path).

    ``jobs`` order defines row order; ``target`` is raw-scale.
    """
    n = len(jobs)
    epochs = np.zeros(n, dtype=int)
    last = np.zeros(n)
    prev = np.zeros(n)
    best = np.zeros(n)
    invested = np.zeros(n)
    window = domain.eval_boundary
    for index, job in enumerate(jobs):
        history: List[float] = job.metrics
        k = job.epochs_completed
        epochs[index] = k
        invested[index] = job.total_training_time
        if not history:
            continue
        normalized = _normalize(domain, np.asarray(history, dtype=float))
        last[index] = float(normalized[-1])
        best[index] = float(normalized.max())
        if len(normalized) > window:
            prev[index] = float(normalized[-1 - window])
    return ConfigStateArrays(
        epochs=epochs,
        last=last,
        prev=prev,
        best=best,
        invested=invested,
        elapsed=float(elapsed),
        tmax=float(tmax),
        slots=int(slots),
        window=int(window),
        max_epochs=int(domain.max_epochs),
        norm_target=float(domain.normalize(target)),
    )
