"""Training loop: REINFORCE episodes against :class:`SchedulerEnv`.

``train_policy`` runs seeded episodes (generator seed =
``gen_seed_base + episode``, a range disjoint from the held-out
evaluation seeds used by the ``learned-vs-pop`` study), updates the
agent after each, publishes ``learn_*`` instruments on the standard
metrics registry, journals checkpoints on the audit trail, and freezes
the final policy as a deterministic artifact
(:mod:`repro.learn.artifact`).  Same config + same seed ⇒
byte-identical artifact — asserted by the tier-1 determinism test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..observability.recorder import NULL_RECORDER
from .agent import ReinforceAgent
from .artifact import make_artifact, write_artifact
from .features import FEATURE_NAMES

__all__ = ["TrainerConfig", "train_policy", "evaluate_agent", "run_episode"]


@dataclass(frozen=True)
class TrainerConfig:
    """Everything that determines a training run (and its artifact).

    The defaults are the recipe behind the committed pretrained
    artifact (:data:`repro.learn.artifact.PRETRAINED_PATH`): running
    ``train_policy(TrainerConfig())`` reproduces it byte for byte.
    """

    episodes: int = 6400
    seed: int = 0
    hidden: int = 16
    lr: float = 0.1
    entropy_coef: float = 0.01
    gen_seed_base: int = 10_000
    #: Training cycles over this many generator seeds
    #: (``gen_seed_base + update % seed_pool``); revisiting seeds lets
    #: the agent's per-seed baselines subtract out configuration-set
    #: difficulty, which otherwise dominates the REINFORCE advantage.
    seed_pool: int = 16
    #: Rollouts per policy update, all on one generator seed; their
    #: leave-one-out means are the REINFORCE baselines (variance
    #: reduction that a running average cannot match).
    group_size: int = 8
    checkpoint_every: int = 25
    # Environment shape; forwarded to EnvConfig.
    workload: str = "cifar10"
    generator: str = "random"
    num_configs: int = 12
    slots: int = 4
    tmax_hours: float = 6.0
    stream_seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "episodes": self.episodes,
            "seed": self.seed,
            "hidden": self.hidden,
            "lr": self.lr,
            "entropy_coef": self.entropy_coef,
            "gen_seed_base": self.gen_seed_base,
            "seed_pool": self.seed_pool,
            "group_size": self.group_size,
            "checkpoint_every": self.checkpoint_every,
            "workload": self.workload,
            "generator": self.generator,
            "num_configs": self.num_configs,
            "slots": self.slots,
            "tmax_hours": self.tmax_hours,
            "stream_seed": self.stream_seed,
        }


def _env_from_config(config: TrainerConfig):
    from ..sim.env import EnvConfig, SchedulerEnv

    return SchedulerEnv(
        EnvConfig(
            workload=config.workload,
            generator=config.generator,
            num_configs=config.num_configs,
            slots=config.slots,
            tmax_hours=config.tmax_hours,
            stream_seed=config.stream_seed,
        )
    )


def run_episode(
    env: Any,
    agent: ReinforceAgent,
    gen_seed: int,
    greedy: bool = False,
    max_steps: int = 10_000,
) -> Dict[str, Any]:
    """Roll one episode; returns reward, records, and diagnostics."""
    observation = env.reset(gen_seed)
    records: List[Any] = []
    entropies: List[float] = []
    reward = 0.0
    info: Dict[str, Any] = {}
    n_slots = getattr(env, "slots_per_step", env.config.slots)
    for _ in range(max_steps):
        candidates = env.candidates()
        if candidates.size == 0:
            break
        if greedy:
            action = agent.greedy_action(observation, candidates, n_slots)
        else:
            action, record = agent.sample_action(
                observation, candidates, n_slots
            )
            records.append(record)
        entropies.append(action.entropy)
        observation, reward, done, info = env.step(
            action.slots, action.kills
        )
        if done:
            break
    return {
        "reward": float(reward),
        "records": records,
        "entropy": float(np.mean(entropies)) if entropies else 0.0,
        "info": info,
    }


def evaluate_agent(
    env: Any,
    agent: ReinforceAgent,
    gen_seeds: Sequence[int],
) -> Dict[str, Any]:
    """Greedy-rollout rewards on the given generator seeds."""
    rewards = [
        run_episode(env, agent, seed, greedy=True)["reward"]
        for seed in gen_seeds
    ]
    return {
        "rewards": rewards,
        "mean_reward": float(np.mean(rewards)) if rewards else 0.0,
    }


def train_policy(
    config: TrainerConfig,
    artifact_path: Optional[str] = None,
    recorder: Any = NULL_RECORDER,
    env: Any = None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Train an agent and (optionally) freeze it as an artifact.

    Returns a summary with the trained ``agent``, per-episode rewards,
    and the artifact document (also written to ``artifact_path`` when
    given — atomically, deterministically).
    """
    if env is None:
        env = _env_from_config(config)
    agent = ReinforceAgent(
        n_features=len(FEATURE_NAMES),
        hidden=config.hidden,
        seed=config.seed,
        lr=config.lr,
        entropy_coef=config.entropy_coef,
    )

    metrics = recorder.metrics
    reward_gauge = metrics.gauge(
        "learn_episode_reward", "Reward of the latest training episode"
    )
    entropy_gauge = metrics.gauge(
        "learn_policy_entropy",
        "Mean allocation-softmax entropy of the latest episode (nats)",
    )
    best_gauge = metrics.gauge(
        "learn_best_reward", "Best episode reward seen so far"
    )
    baseline_gauge = metrics.gauge(
        "learn_baseline", "EMA reward baseline used for advantages"
    )
    episode_counter = metrics.counter(
        "learn_episodes_total", "Training episodes completed"
    )

    rewards: List[float] = []
    entropies: List[float] = []
    best_reward = float("-inf")
    group_size = max(config.group_size, 1)
    episode = 0
    update_index = 0
    while episode < config.episodes:
        gen_seed = (
            config.gen_seed_base + update_index % max(config.seed_pool, 1)
        )
        group: List[tuple] = []
        group_entropy = 0.0
        batch = min(group_size, config.episodes - episode)
        for _ in range(batch):
            rollout = run_episode(env, agent, gen_seed)
            group.append((rollout["records"], rollout["reward"]))
            rewards.append(rollout["reward"])
            entropies.append(rollout["entropy"])
            group_entropy += rollout["entropy"]
            best_reward = max(best_reward, rollout["reward"])
            episode += 1
        update = agent.update_group(group, key=gen_seed)
        update_index += 1

        mean_reward = float(np.mean([reward for _, reward in group]))
        reward_gauge.set(mean_reward)
        entropy_gauge.set(group_entropy / batch)
        best_gauge.set(best_reward)
        baseline_gauge.set(update["baseline"])
        episode_counter.inc(batch)

        is_checkpoint = (
            update_index % max(config.checkpoint_every, 1) == 0
            or episode >= config.episodes
        )
        if is_checkpoint:
            recorder.audit.record(
                "learn_checkpoint",
                episode=episode,
                reward=mean_reward,
                best_reward=best_reward,
                entropy=group_entropy / batch,
                baseline=update["baseline"],
            )
        if progress is not None:
            progress(
                {
                    "episode": episode,
                    "episodes": config.episodes,
                    "reward": mean_reward,
                    "best_reward": best_reward,
                    "entropy": group_entropy / batch,
                }
            )

    artifact = make_artifact(
        weights=agent.net.weights_dict(),
        hidden=config.hidden,
        provenance={
            "trainer": config.to_dict(),
            "episodes": config.episodes,
            "final_reward": rewards[-1] if rewards else None,
            "best_reward": best_reward if rewards else None,
            "mean_reward_last_quarter": (
                float(np.mean(rewards[-max(1, len(rewards) // 4):]))
                if rewards
                else None
            ),
        },
    )
    if artifact_path is not None:
        write_artifact(artifact_path, artifact)
        recorder.audit.record(
            "learn_artifact_frozen",
            path=artifact_path,
            episodes=config.episodes,
        )

    return {
        "agent": agent,
        "rewards": rewards,
        "entropies": entropies,
        "best_reward": best_reward if rewards else None,
        "artifact": artifact,
        "artifact_path": artifact_path,
    }
