"""Frozen learned-policy artifacts.

An artifact is a single JSON file carrying everything the serving
path needs: the network weights, the feature schema they were trained
against (drift guard — serving refuses a schema mismatch), and the
training provenance (trainer config, episode count, final reward
statistics).  The file is written atomically and deterministically —
``sort_keys=True``, fixed separators, **no timestamps** — so training
twice with the same seed produces byte-identical files, which the
tier-1 determinism test asserts.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict

from .features import FEATURE_VERSION, feature_schema

__all__ = [
    "ARTIFACT_ENV_VAR",
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "PRETRAINED_PATH",
    "load_artifact",
    "make_artifact",
    "write_artifact",
]

ARTIFACT_FORMAT = "repro-learned-policy"
ARTIFACT_VERSION = 1

#: Environment variable the learned SAP consults for a frozen artifact
#: path.  Environment variables propagate into the lab's cell worker
#: subprocesses, so this is how ``learned-vs-pop`` evaluation cells
#: find the artifact trained in the parent process.
ARTIFACT_ENV_VAR = "REPRO_LEARNED_ARTIFACT"

#: The committed default artifact (the exact output of
#: ``train_policy(TrainerConfig())`` — byte-reproducible, so the file
#: is data, not an opaque binary).  The learned SAP falls back to it
#: when neither a constructor path nor :data:`ARTIFACT_ENV_VAR` names
#: one, which is what makes ``repro sweep run --study learned-vs-pop``
#: work out of the box.
PRETRAINED_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "pretrained", "cifar10.json"
)


def make_artifact(
    weights: Dict[str, Any],
    hidden: int,
    provenance: Dict[str, Any],
) -> Dict[str, Any]:
    """Assemble the artifact document (pure; no I/O)."""
    return {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "feature_schema": feature_schema(),
        "hidden": int(hidden),
        "weights": weights,
        "provenance": provenance,
    }


def write_artifact(path: str, artifact: Dict[str, Any]) -> None:
    """Atomically write ``artifact`` as deterministic JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    payload = json.dumps(
        artifact, sort_keys=True, separators=(",", ":"), indent=None
    )
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def load_artifact(path: str) -> Dict[str, Any]:
    """Load and validate a frozen-policy artifact."""
    with open(path) as handle:
        artifact = json.load(handle)
    if artifact.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path}: not a {ARTIFACT_FORMAT} artifact "
            f"(format={artifact.get('format')!r})"
        )
    if artifact.get("version") != ARTIFACT_VERSION:
        raise ValueError(
            f"{path}: unsupported artifact version "
            f"{artifact.get('version')!r} (expected {ARTIFACT_VERSION})"
        )
    schema = artifact.get("feature_schema") or {}
    if schema.get("version") != FEATURE_VERSION:
        raise ValueError(
            f"{path}: feature schema version {schema.get('version')!r} "
            f"does not match serving code ({FEATURE_VERSION}); retrain"
        )
    expected = feature_schema()["names"]
    if schema.get("names") != expected:
        raise ValueError(
            f"{path}: feature names {schema.get('names')!r} do not match "
            f"serving code {expected!r}; retrain"
        )
    if "weights" not in artifact:
        raise ValueError(f"{path}: artifact has no weights")
    return artifact
