"""Numpy-only policy-gradient agent (REINFORCE with baseline).

The network is a per-configuration scorer with shared weights — the
same Decima-style trick that makes the policy permutation-invariant
and indifferent to the number of configurations: one hidden layer
``h = tanh(x W1 + b1)`` feeds two scalar heads, an **allocation
logit** (how much this configuration deserves a slot right now) and a
**kill logit** (whether to terminate it).  An action is sampled as

* per-candidate Bernoulli kills from ``sigmoid(kill_logit)`` (the
  kill bias starts strongly negative so a fresh agent almost never
  kills), then
* up to ``slots`` distinct survivors drawn sequentially from the
  renormalized softmax over allocation logits.

Training is vanilla episodic REINFORCE: accumulate
``∇ log π(a_t | s_t)`` over the episode by manual backprop, scale by
the advantage against an exponential-moving-average baseline, ascend.
Everything is seeded (`numpy.random.default_rng`) and float64, so a
fixed seed reproduces training bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["PolicyNetwork", "ReinforceAgent", "SampledAction", "StepRecord"]

_PARAM_NAMES = ("W1", "b1", "w_alloc", "b_alloc", "w_kill", "b_kill")

#: Initial kill-head bias: sigmoid(-3) ≈ 0.047, so an untrained agent
#: rarely kills and the random-init baseline policy is a sane
#: no-early-termination scheduler rather than a mass murderer.
KILL_BIAS_INIT = -3.0


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


class PolicyNetwork:
    """Shared-weight per-configuration scorer with two scalar heads."""

    def __init__(
        self, n_features: int, hidden: int = 16, seed: int = 0
    ) -> None:
        rng = np.random.default_rng(seed)
        self.n_features = n_features
        self.hidden = hidden
        self.params: Dict[str, np.ndarray] = {
            "W1": rng.standard_normal((n_features, hidden))
            / np.sqrt(n_features),
            "b1": np.zeros(hidden),
            "w_alloc": rng.standard_normal(hidden) / np.sqrt(hidden),
            "b_alloc": np.zeros(1),
            "w_kill": rng.standard_normal(hidden) / (np.sqrt(hidden) * 10.0),
            "b_kill": np.full(1, KILL_BIAS_INIT),
        }

    def forward(self, features: np.ndarray):
        """Returns (alloc_logits (n,), kill_logits (n,), hidden (n, H))."""
        hidden = np.tanh(features @ self.params["W1"] + self.params["b1"])
        alloc = hidden @ self.params["w_alloc"] + self.params["b_alloc"][0]
        kill = hidden @ self.params["w_kill"] + self.params["b_kill"][0]
        return alloc, kill, hidden

    # ------------------------------------------------------- serialisation

    def weights_dict(self) -> Dict[str, Any]:
        """JSON-serialisable weights (lists of floats)."""
        return {name: self.params[name].tolist() for name in _PARAM_NAMES}

    @classmethod
    def from_weights(cls, weights: Dict[str, Any]) -> "PolicyNetwork":
        missing = [name for name in _PARAM_NAMES if name not in weights]
        if missing:
            raise ValueError(f"artifact weights missing: {missing}")
        w1 = np.asarray(weights["W1"], dtype=float)
        if w1.ndim != 2:
            raise ValueError("W1 must be a 2-d matrix")
        network = cls.__new__(cls)
        network.n_features = int(w1.shape[0])
        network.hidden = int(w1.shape[1])
        network.params = {
            name: np.asarray(weights[name], dtype=float).reshape(
                {
                    "W1": (network.n_features, network.hidden),
                    "b1": (network.hidden,),
                    "w_alloc": (network.hidden,),
                    "b_alloc": (1,),
                    "w_kill": (network.hidden,),
                    "b_kill": (1,),
                }[name]
            )
            for name in _PARAM_NAMES
        }
        return network


@dataclass
class SampledAction:
    """One environment action plus its sampling diagnostics."""

    slots: np.ndarray  # config indices granted a slot this window
    kills: np.ndarray  # config indices terminated this window
    entropy: float     # allocation-softmax entropy over survivors (nats)


@dataclass
class StepRecord:
    """Everything needed to recompute ``∇ log π`` for one step."""

    features: np.ndarray
    candidates: np.ndarray
    kill_decisions: np.ndarray  # 0/1 per candidate (aligned)
    slot_sequence: List[int] = field(default_factory=list)


class ReinforceAgent:
    """Episodic REINFORCE with an EMA baseline over a PolicyNetwork."""

    def __init__(
        self,
        n_features: int,
        hidden: int = 16,
        seed: int = 0,
        lr: float = 0.05,
        baseline_momentum: float = 0.9,
        entropy_coef: float = 0.0,
    ) -> None:
        self.net = PolicyNetwork(n_features, hidden=hidden, seed=seed)
        self.rng = np.random.default_rng(seed + 1)
        self.lr = lr
        self.baseline_momentum = baseline_momentum
        self.entropy_coef = entropy_coef
        self.baseline: Optional[float] = None
        # Episode rewards vary far more across generator seeds (easy vs
        # hard configuration sets) than across policies; keyed baselines
        # remove that variance from the advantage when the trainer
        # cycles a seed pool.
        self._baselines: Dict[Any, float] = {}

    # ------------------------------------------------------------ acting

    def sample_action(
        self,
        features: np.ndarray,
        candidates: np.ndarray,
        n_slots: int,
    ) -> tuple:
        """Sample (action, record) for one scheduling window."""
        alloc, kill, _ = self.net.forward(features)
        candidates = np.asarray(candidates, dtype=int)

        kill_probability = 1.0 / (1.0 + np.exp(-kill[candidates]))
        kill_decisions = (
            self.rng.random(candidates.size) < kill_probability
        ).astype(int)
        killed = candidates[kill_decisions == 1]
        survivors = candidates[kill_decisions == 0]

        record = StepRecord(
            features=np.array(features, copy=True),
            candidates=candidates,
            kill_decisions=kill_decisions,
        )

        entropy = 0.0
        chosen: List[int] = []
        available = list(survivors)
        if available:
            probabilities = _softmax(alloc[available])
            entropy = float(
                -np.sum(probabilities * np.log(probabilities + 1e-12))
            )
        for _ in range(min(n_slots, len(available))):
            probabilities = _softmax(alloc[available])
            pick = int(self.rng.choice(len(available), p=probabilities))
            chosen.append(available.pop(pick))
        record.slot_sequence = list(chosen)

        action = SampledAction(
            slots=np.asarray(chosen, dtype=int),
            kills=killed,
            entropy=entropy,
        )
        return action, record

    def greedy_action(
        self,
        features: np.ndarray,
        candidates: np.ndarray,
        n_slots: int,
    ) -> SampledAction:
        """Deterministic argmax action (inference / evaluation)."""
        alloc, kill, _ = self.net.forward(features)
        candidates = np.asarray(candidates, dtype=int)
        killed = candidates[kill[candidates] > 0.0]
        survivors = candidates[kill[candidates] <= 0.0]
        order = survivors[np.argsort(-alloc[survivors], kind="stable")]
        return SampledAction(
            slots=order[:n_slots], kills=killed, entropy=0.0
        )

    # ------------------------------------------------------------ learning

    def _zero_grads(self) -> Dict[str, np.ndarray]:
        return {
            name: np.zeros_like(value)
            for name, value in self.net.params.items()
        }

    def _accumulate(
        self, grads: Dict[str, np.ndarray], record: StepRecord
    ) -> None:
        alloc, kill, hidden = self.net.forward(record.features)
        n = record.features.shape[0]

        g_alloc = np.zeros(n)
        available = [
            int(c)
            for c, killed in zip(record.candidates, record.kill_decisions)
            if not killed
        ]
        for chosen in record.slot_sequence:
            probabilities = _softmax(alloc[available])
            for position, index in enumerate(available):
                g_alloc[index] -= probabilities[position]
            g_alloc[chosen] += 1.0
            available.remove(chosen)

        g_kill = np.zeros(n)
        kill_probability = 1.0 / (1.0 + np.exp(-kill[record.candidates]))
        g_kill[record.candidates] = (
            record.kill_decisions - kill_probability
        )

        params = self.net.params
        d_hidden = (
            np.outer(g_alloc, params["w_alloc"])
            + np.outer(g_kill, params["w_kill"])
        )
        d_pre = d_hidden * (1.0 - hidden * hidden)
        grads["W1"] += record.features.T @ d_pre
        grads["b1"] += d_pre.sum(axis=0)
        grads["w_alloc"] += hidden.T @ g_alloc
        grads["b_alloc"] += np.array([g_alloc.sum()])
        grads["w_kill"] += hidden.T @ g_kill
        grads["b_kill"] += np.array([g_kill.sum()])

    def _accumulate_entropy(
        self, grads: Dict[str, np.ndarray], record: StepRecord
    ) -> None:
        """Gradient of the allocation-softmax entropy (exploration
        bonus; added unscaled by the advantage)."""
        alloc, _, hidden = self.net.forward(record.features)
        n = record.features.shape[0]
        g_alloc = np.zeros(n)
        available = [
            int(c)
            for c, killed in zip(record.candidates, record.kill_decisions)
            if not killed
        ]
        for chosen in record.slot_sequence:
            probabilities = _softmax(alloc[available])
            log_p = np.log(probabilities + 1e-12)
            entropy = float(-np.sum(probabilities * log_p))
            # dH/dlogit_j = -p_j (log p_j + H)
            for position, index in enumerate(available):
                g_alloc[index] -= probabilities[position] * (
                    log_p[position] + entropy
                )
            available.remove(chosen)
        params = self.net.params
        d_hidden = np.outer(g_alloc, params["w_alloc"])
        d_pre = d_hidden * (1.0 - hidden * hidden)
        grads["W1"] += record.features.T @ d_pre
        grads["b1"] += d_pre.sum(axis=0)
        grads["w_alloc"] += hidden.T @ g_alloc
        grads["b_alloc"] += np.array([g_alloc.sum()])

    def update(
        self,
        records: List[StepRecord],
        episode_reward: float,
        key: Any = None,
    ) -> Dict[str, float]:
        """One REINFORCE update from a finished episode.

        ``key`` selects the advantage baseline — pass the episode's
        generator seed when training over a cycling seed pool so each
        seed's difficulty is subtracted out; None uses one global EMA.
        """
        keyed = self._baselines.get(key)
        if keyed is None:
            keyed = episode_reward  # first visit: advantage 0
        advantage = episode_reward - keyed
        if records and advantage != 0.0:
            grads = self._zero_grads()
            for record in records:
                self._accumulate(grads, record)
            scale = self.lr * advantage / float(len(records))
            for name, gradient in grads.items():
                self.net.params[name] += scale * gradient
        momentum = self.baseline_momentum
        self._baselines[key] = momentum * keyed + (1 - momentum) * (
            episode_reward
        )
        if self.baseline is None:
            self.baseline = episode_reward
        self.baseline = momentum * self.baseline + (1 - momentum) * (
            episode_reward
        )
        return {
            "advantage": float(advantage),
            "baseline": float(self.baseline),
        }

    def update_group(
        self, group: List[tuple], key: Any = None
    ) -> Dict[str, float]:
        """One update from several rollouts of the *same* episode.

        ``group`` is a list of ``(records, reward)`` rollouts sharing a
        generator seed.  Each rollout's advantage is its reward minus
        the leave-one-out mean of the others — an unbiased, much
        lower-variance baseline than any running average, because the
        comparison set shares the episode's configuration set exactly.
        All gradients are computed against the current parameters and
        applied in one step.
        """
        if not group:
            return {"advantage": 0.0, "baseline": 0.0}
        rewards = np.array([reward for _, reward in group], dtype=float)
        n = rewards.size
        total = float(rewards.sum())
        grads = self._zero_grads()
        touched = False
        for (records, reward), _ in zip(group, range(n)):
            if n > 1:
                baseline = (total - reward) / (n - 1)
            else:
                baseline = self._baselines.get(key, reward)
            advantage = reward - baseline
            if not records:
                continue
            if advantage != 0.0:
                touched = True
                rollout_grads = self._zero_grads()
                for record in records:
                    self._accumulate(rollout_grads, record)
                scale = advantage / float(len(records))
                for name, gradient in rollout_grads.items():
                    grads[name] += scale * gradient
            if self.entropy_coef > 0.0:
                touched = True
                entropy_grads = self._zero_grads()
                for record in records:
                    self._accumulate_entropy(entropy_grads, record)
                scale = self.entropy_coef / float(len(records))
                for name, gradient in entropy_grads.items():
                    grads[name] += scale * gradient
        if touched:
            for name, gradient in grads.items():
                self.net.params[name] += self.lr * gradient / float(n)
        mean_reward = total / n
        momentum = self.baseline_momentum
        previous = self._baselines.get(key, mean_reward)
        self._baselines[key] = momentum * previous + (1 - momentum) * (
            mean_reward
        )
        if self.baseline is None:
            self.baseline = mean_reward
        self.baseline = momentum * self.baseline + (1 - momentum) * (
            mean_reward
        )
        return {
            "advantage": float(rewards.max() - rewards.min()),
            "baseline": float(self.baseline),
        }
