"""Learned scheduling: train an RL policy against the simulator.

The Decima/DL2 recipe over HyperDrive's substrate: the deterministic
simulator wrapped as an episodic environment
(:mod:`repro.sim.env`), per-configuration feature vectors
(:mod:`repro.learn.features`), a numpy-only REINFORCE agent
(:mod:`repro.learn.agent`), a training loop with observability and
frozen-artifact output (:mod:`repro.learn.trainer`), and a
registry-registered SAP that drives the unchanged scheduler from a
frozen artifact (:mod:`repro.policies.learned`).

This package deliberately imports neither the registry nor the lab so
the SAP module can depend on it without cycles; the trainer pulls the
environment in lazily.
"""

from .agent import PolicyNetwork, ReinforceAgent
from .artifact import load_artifact, write_artifact
from .features import FEATURE_NAMES, feature_schema

__all__ = [
    "FEATURE_NAMES",
    "PolicyNetwork",
    "ReinforceAgent",
    "feature_schema",
    "load_artifact",
    "write_artifact",
]
