"""Tests for the weighted curve ensemble and its posterior."""

from __future__ import annotations

import numpy as np
import pytest

from repro.curves.ensemble import CurveEnsemble
from repro.curves.models import get_model


@pytest.fixture()
def small_ensemble() -> CurveEnsemble:
    return CurveEnsemble([get_model("pow3"), get_model("weibull")])


def _target_curve(n: int) -> np.ndarray:
    model = get_model("weibull")
    return model(np.arange(1, n + 1, dtype=float), [0.75, 0.1, 0.1, 1.3])


def test_dim_accounting(small_ensemble):
    # pow3 has 3 params, weibull 4, + 2 raw weights + log sigma.
    assert small_ensemble.dim == 3 + 4 + 2 + 1


def test_pack_unpack_roundtrip(small_ensemble):
    thetas = {"pow3": [0.7, 0.4, 0.6], "weibull": [0.8, 0.1, 0.1, 1.0]}
    vec = small_ensemble.pack(thetas, weights=[0.3, 0.7], sigma=0.05)
    out_thetas, out_weights, out_sigma = small_ensemble.unpack(vec)
    np.testing.assert_allclose(out_thetas["pow3"], thetas["pow3"])
    np.testing.assert_allclose(out_thetas["weibull"], thetas["weibull"])
    np.testing.assert_allclose(out_weights, [0.3, 0.7], atol=1e-9)
    assert out_sigma == pytest.approx(0.05)


def test_pack_validates_weight_count(small_ensemble):
    thetas = {"pow3": [0.7, 0.4, 0.6], "weibull": [0.8, 0.1, 0.1, 1.0]}
    with pytest.raises(ValueError, match="one weight per model"):
        small_ensemble.pack(thetas, weights=[1.0], sigma=0.05)


def test_pack_validates_theta_length(small_ensemble):
    thetas = {"pow3": [0.7, 0.4], "weibull": [0.8, 0.1, 0.1, 1.0]}
    with pytest.raises(ValueError, match="expected 3 params"):
        small_ensemble.pack(thetas, weights=[0.5, 0.5], sigma=0.05)


def test_weights_softmax_normalised(small_ensemble):
    vec = np.zeros(small_ensemble.dim)
    weights = small_ensemble.weights(vec)
    np.testing.assert_allclose(weights, [0.5, 0.5])
    assert weights.sum() == pytest.approx(1.0)


def test_prior_rejects_out_of_bounds_theta(small_ensemble):
    thetas = {"pow3": [0.7, 0.4, 0.6], "weibull": [0.8, 0.1, 0.1, 1.0]}
    vec = small_ensemble.pack(thetas, weights=[0.5, 0.5], sigma=0.05)
    vec[0] = 99.0  # pow3 'c' far above its upper bound
    assert small_ensemble.log_prior(vec) == -np.inf


def test_prior_rejects_extreme_sigma(small_ensemble):
    thetas = {"pow3": [0.7, 0.4, 0.6], "weibull": [0.8, 0.1, 0.1, 1.0]}
    vec = small_ensemble.pack(thetas, weights=[0.5, 0.5], sigma=0.05)
    vec[-1] = np.log(10.0)
    assert small_ensemble.log_prior(vec) == -np.inf


def test_likelihood_prefers_matching_sigma(small_ensemble):
    y = _target_curve(30)
    center = small_ensemble.initial_vector(y)
    ll_good = small_ensemble.log_likelihood(center, y)
    bad = center.copy()
    bad[-1] = np.log(0.4)
    ll_bad = small_ensemble.log_likelihood(bad, y)
    assert ll_good > ll_bad


def test_posterior_finite_at_initial_vector(small_ensemble):
    y = _target_curve(20)
    vec = small_ensemble.initial_vector(y)
    assert np.isfinite(small_ensemble.log_posterior(vec, y))


def test_initial_vector_weights_favour_better_family():
    ensemble = CurveEnsemble([get_model("ilog2"), get_model("weibull")])
    y = _target_curve(40)
    vec = ensemble.initial_vector(y)
    weights = ensemble.weights(vec)
    # weibull generated the data; it should dominate ilog2.
    assert weights[1] > weights[0]


def test_predict_is_weighted_combination(small_ensemble):
    thetas = {"pow3": [0.7, 0.4, 0.6], "weibull": [0.8, 0.1, 0.1, 1.0]}
    x = np.arange(1, 10, dtype=float)
    vec = small_ensemble.pack(thetas, weights=[1.0, 1e-8], sigma=0.05)
    nearly_pow3 = small_ensemble.predict(x, vec)
    np.testing.assert_allclose(
        nearly_pow3, get_model("pow3")(x, thetas["pow3"]), atol=1e-4
    )


def test_scatter_around_keeps_walkers_feasible(small_ensemble):
    rng = np.random.default_rng(0)
    y = _target_curve(15)
    center = small_ensemble.initial_vector(y, rng=rng)
    walkers = small_ensemble.scatter_around(center, 24, rng)
    assert walkers.shape == (24, small_ensemble.dim)
    for walker in walkers:
        assert np.isfinite(small_ensemble.log_prior(walker))


def test_empty_ensemble_rejected():
    with pytest.raises(ValueError, match="at least one"):
        CurveEnsemble([])


def test_pack_rejects_nonpositive_sigma(small_ensemble):
    thetas = {"pow3": [0.7, 0.4, 0.6], "weibull": [0.8, 0.1, 0.1, 1.0]}
    with pytest.raises(ValueError, match="sigma must be positive"):
        small_ensemble.pack(thetas, weights=[0.5, 0.5], sigma=0.0)


def test_predict_batch_matches_serial_rows(small_ensemble):
    rng = np.random.default_rng(3)
    x = np.arange(6, 13, dtype=float)
    vecs = np.stack(
        [
            small_ensemble.scatter_around(
                np.zeros(small_ensemble.dim), 1, rng
            )[0]
            for _ in range(5)
        ]
    )
    batched = small_ensemble.predict_batch(x, vecs)
    for row, vec in zip(batched, vecs):
        np.testing.assert_array_equal(row, small_ensemble.predict(x, vec))


def test_predict_batch_validates_shape(small_ensemble):
    with pytest.raises(ValueError, match="shape"):
        small_ensemble.predict_batch(
            np.arange(1, 4, dtype=float), np.zeros((2, 3))
        )


def test_log_posterior_batch_matches_serial_rows(small_ensemble):
    rng = np.random.default_rng(7)
    y = _target_curve(8)
    center = small_ensemble.initial_vector(y, rng=rng)
    vecs = small_ensemble.scatter_around(center, 6, rng)
    # Include an out-of-support row: theta pushed past the bounds.
    broken = vecs[0].copy()
    broken[0] = 1e6
    vecs = np.vstack([vecs, broken])
    batched = small_ensemble.log_posterior_batch(vecs, y)
    serial = np.array(
        [small_ensemble.log_posterior(vec, y) for vec in vecs]
    )
    np.testing.assert_array_equal(batched, serial)
    assert batched[-1] == -np.inf
