"""Tests for the parametric curve families."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves.models import CURVE_MODELS, get_model, model_names

EXPECTED_FAMILIES = {
    "vapor_pressure",
    "pow3",
    "log_log_linear",
    "hill3",
    "log_power",
    "pow4",
    "mmf",
    "exp4",
    "janoschek",
    "weibull",
    "ilog2",
}


def test_registry_contains_the_eleven_families():
    assert set(model_names()) == EXPECTED_FAMILIES
    assert len(CURVE_MODELS) == 11


def test_get_model_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown curve model"):
        get_model("nope")


def test_get_model_returns_registered_instance():
    assert get_model("weibull") is CURVE_MODELS["weibull"]


@pytest.mark.parametrize("name", sorted(EXPECTED_FAMILIES))
def test_default_parameters_within_bounds(name):
    model = get_model(name)
    assert model.in_bounds(model.default)
    assert len(model.lower) == model.num_params
    assert len(model.upper) == model.num_params


@pytest.mark.parametrize("name", sorted(EXPECTED_FAMILIES))
def test_evaluation_is_finite_at_defaults(name):
    model = get_model(name)
    x = np.arange(1, 200, dtype=float)
    y = model(x, model.default)
    assert y.shape == x.shape
    assert np.all(np.isfinite(y))


@pytest.mark.parametrize("name", sorted(EXPECTED_FAMILIES))
def test_evaluation_finite_at_bound_corners(name):
    model = get_model(name)
    x = np.arange(1, 50, dtype=float)
    for theta in (model.lower, model.upper):
        y = model(x, theta)
        assert np.all(np.isfinite(y)), f"{name} non-finite at bounds"


def test_wrong_parameter_count_raises():
    model = get_model("pow3")
    with pytest.raises(ValueError, match="expects 3 parameters"):
        model(np.arange(1, 5), [0.5, 0.5])


def test_scalar_epoch_evaluation():
    model = get_model("weibull")
    value = model(10.0, model.default)
    assert np.isscalar(value) or value.shape == ()


def test_batched_theta_evaluation_matches_loop():
    x = np.arange(1, 60, dtype=float)
    rng = np.random.default_rng(1)
    for model in CURVE_MODELS.values():
        thetas = np.clip(
            np.asarray(model.default)
            + 0.05 * rng.standard_normal((6, model.num_params)),
            model.lower,
            model.upper,
        )
        batched = model(x, thetas[:, None, :])
        looped = np.stack([model(x, t) for t in thetas])
        np.testing.assert_allclose(batched, looped, atol=1e-12)


@pytest.mark.parametrize(
    "name", ["pow3", "mmf", "janoschek", "weibull", "hill3", "ilog2"]
)
def test_saturating_families_increase_at_defaults(name):
    """The growth families should be non-decreasing for their default
    (growth-shaped) parameters."""
    model = get_model(name)
    x = np.arange(1, 150, dtype=float)
    y = model(x, model.default)
    diffs = np.diff(y)
    assert np.all(diffs >= -1e-9), f"{name} not monotone at defaults"


def test_clip_to_bounds():
    model = get_model("pow3")
    clipped = model.clip_to_bounds([99.0, -5.0, 2.0])
    assert model.in_bounds(clipped)
    assert clipped[0] == model.upper[0]
    assert clipped[1] == model.lower[1]


@given(
    theta_scale=st.floats(min_value=0.0, max_value=1.0),
    x_max=st.integers(min_value=2, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_all_models_finite_for_any_in_bounds_theta(theta_scale, x_max):
    """Property: any in-bounds parameter vector yields finite output."""
    x = np.arange(1, x_max + 1, dtype=float)
    for model in CURVE_MODELS.values():
        lower = np.asarray(model.lower)
        upper = np.asarray(model.upper)
        theta = lower + theta_scale * (upper - lower)
        y = model(x, theta)
        assert np.all(np.isfinite(y))
