"""Tests for least-squares curve fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.curves.fitting import ModelFit, fit_all_models, fit_model
from repro.curves.models import get_model


def _weibull_curve(n: int, alpha=0.8, beta=0.1, kappa=0.08, delta=1.2):
    model = get_model("weibull")
    return model(np.arange(1, n + 1, dtype=float), [alpha, beta, kappa, delta])


def test_fit_recovers_weibull_shape():
    y = _weibull_curve(60)
    fit = fit_model(get_model("weibull"), y, restarts=4)
    assert fit.success
    assert fit.mse < 1e-6
    np.testing.assert_allclose(fit.predict(np.array([80.0])), 0.8, atol=0.05)


def test_fit_with_noise_still_close():
    rng = np.random.default_rng(0)
    y = _weibull_curve(60) + 0.01 * rng.standard_normal(60)
    fit = fit_model(get_model("weibull"), y, rng=rng)
    assert fit.mse < 5e-4


def test_fit_theta_respects_bounds():
    rng = np.random.default_rng(1)
    y = np.clip(_weibull_curve(30) + 0.05 * rng.standard_normal(30), 0, 1)
    for name in ("pow3", "mmf", "ilog2", "hill3"):
        model = get_model(name)
        fit = fit_model(model, y, rng=rng)
        assert model.in_bounds(fit.theta)


def test_fit_rejects_too_short_input():
    with pytest.raises(ValueError, match="at least 2"):
        fit_model(get_model("pow3"), [0.5])


def test_fit_rejects_2d_input():
    with pytest.raises(ValueError):
        fit_model(get_model("pow3"), np.ones((3, 3)))


def test_fit_all_models_returns_every_family():
    y = _weibull_curve(25)
    fits = fit_all_models(y, restarts=1, max_nfev=40)
    assert len(fits) == 11
    assert all(isinstance(f, ModelFit) for f in fits.values())
    best = min(fits.values(), key=lambda f: f.mse)
    assert best.mse < 1e-3  # at least one family nails a weibull curve


def test_fit_all_models_subset():
    y = _weibull_curve(25)
    subset = [get_model("pow3"), get_model("weibull")]
    fits = fit_all_models(y, models=subset)
    assert set(fits) == {"pow3", "weibull"}


def test_covariance_present_and_symmetric():
    rng = np.random.default_rng(2)
    y = _weibull_curve(40) + 0.01 * rng.standard_normal(40)
    fit = fit_model(get_model("weibull"), y, rng=rng)
    assert fit.covariance is not None
    np.testing.assert_allclose(fit.covariance, fit.covariance.T)
    eigvals = np.linalg.eigvalsh(fit.covariance)
    assert np.all(eigvals > -1e-12)


def test_covariance_wider_on_short_prefix():
    """Asymptote uncertainty must shrink as more epochs are observed."""
    rng = np.random.default_rng(3)
    noise = 0.01 * rng.standard_normal(100)
    full = _weibull_curve(100) + noise
    fit_short = fit_model(get_model("weibull"), full[:10], rng=rng)
    fit_long = fit_model(get_model("weibull"), full[:80], rng=rng)
    assert fit_short.covariance is not None and fit_long.covariance is not None
    # Compare spread in the asymptote (alpha) direction.
    assert fit_short.covariance[0, 0] > fit_long.covariance[0, 0]


def test_sample_thetas_in_bounds_and_varied():
    rng = np.random.default_rng(4)
    y = _weibull_curve(15) + 0.01 * rng.standard_normal(15)
    fit = fit_model(get_model("weibull"), y, rng=rng)
    draws = fit.sample_thetas(50, rng)
    assert draws.shape == (50, 4)
    model = get_model("weibull")
    for draw in draws:
        assert model.in_bounds(draw)
    assert np.std(draws[:, 0]) > 0  # asymptote actually varies


def test_sample_thetas_without_covariance_returns_point():
    fit = ModelFit(
        model=get_model("pow3"),
        theta=np.array([0.7, 0.5, 0.5]),
        mse=0.1,
        success=False,
        covariance=None,
    )
    draws = fit.sample_thetas(5, np.random.default_rng(0))
    assert np.all(draws == fit.theta)
