"""Tests for the affine-invariant ensemble sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.curves.mcmc import EnsembleSampler, SamplerResult


def _gaussian_logpdf(mean, cov_inv):
    def log_prob(x):
        d = x - mean
        return float(-0.5 * d @ cov_inv @ d)

    return log_prob


def test_constructor_validation():
    def fn(x):
        return -0.5 * float(x @ x)

    with pytest.raises(ValueError, match="even"):
        EnsembleSampler(3, 2, fn)
    with pytest.raises(ValueError, match="even"):
        EnsembleSampler(0, 2, fn)
    with pytest.raises(ValueError, match="dim"):
        EnsembleSampler(4, 0, fn)
    with pytest.raises(ValueError, match="stretch"):
        EnsembleSampler(4, 2, fn, stretch=1.0)


def test_initial_shape_validation():
    sampler = EnsembleSampler(8, 2, lambda x: -0.5 * float(x @ x))
    with pytest.raises(ValueError, match="shape"):
        sampler.run(np.zeros((4, 2)), 10)


def test_non_finite_initial_rejected():
    def log_prob(x):
        return -np.inf if x[0] > 0 else -0.5 * float(x @ x)

    sampler = EnsembleSampler(4, 1, log_prob)
    initial = np.array([[1.0], [-1.0], [-2.0], [-0.5]])
    with pytest.raises(ValueError, match="non-finite"):
        sampler.run(initial, 5)


def test_recovers_1d_gaussian_moments():
    rng = np.random.default_rng(0)
    sampler = EnsembleSampler(20, 1, lambda x: -0.5 * float((x[0] - 3.0) ** 2 / 4.0))
    initial = 3.0 + 0.1 * rng.standard_normal((20, 1))
    result = sampler.run(initial, 600, rng=rng)
    flat = result.flat(burn=200)
    assert abs(flat.mean() - 3.0) < 0.15
    assert abs(flat.std() - 2.0) < 0.3


def test_recovers_correlated_2d_gaussian():
    rng = np.random.default_rng(1)
    cov = np.array([[1.0, 0.8], [0.8, 1.0]])
    cov_inv = np.linalg.inv(cov)
    sampler = EnsembleSampler(30, 2, _gaussian_logpdf(np.zeros(2), cov_inv))
    initial = 0.05 * rng.standard_normal((30, 2))
    result = sampler.run(initial, 800, rng=rng)
    flat = result.flat(burn=300, thin=2)
    sample_cov = np.cov(flat.T)
    np.testing.assert_allclose(sample_cov, cov, atol=0.25)


def test_acceptance_rate_reasonable():
    rng = np.random.default_rng(2)
    sampler = EnsembleSampler(16, 2, lambda x: -0.5 * float(x @ x))
    initial = 0.1 * rng.standard_normal((16, 2))
    result = sampler.run(initial, 200, rng=rng)
    assert 0.2 < result.acceptance_rate < 0.95


def test_chain_shapes():
    rng = np.random.default_rng(3)
    sampler = EnsembleSampler(8, 3, lambda x: -0.5 * float(x @ x))
    result = sampler.run(0.1 * rng.standard_normal((8, 3)), 50, rng=rng)
    assert result.chain.shape == (50, 8, 3)
    assert result.log_probs.shape == (50, 8)
    assert result.flat(burn=10).shape == (40 * 8, 3)


def test_flat_rejects_full_burn():
    result = SamplerResult(
        chain=np.zeros((10, 4, 2)), log_probs=np.zeros((10, 4)), acceptance_rate=0.5
    )
    with pytest.raises(ValueError, match="discards the whole chain"):
        result.flat(burn=10)


def test_deterministic_given_rng_seed():
    def run_once():
        rng = np.random.default_rng(42)
        sampler = EnsembleSampler(8, 1, lambda x: -0.5 * float(x @ x))
        return sampler.run(0.1 * rng.standard_normal((8, 1)), 30, rng=rng).chain

    np.testing.assert_array_equal(run_once(), run_once())


def test_batched_scoring_produces_identical_chains():
    """Wiring a batch density must not change the chain at all: the rng
    stream and the accept/reject order are unchanged, so batched and
    scalar runs are bit-identical."""

    def log_prob(vec):
        return -0.5 * float(np.sum(vec**2))

    def log_prob_batch(block):
        return -0.5 * np.sum(np.asarray(block) ** 2, axis=1)

    initial = np.random.default_rng(11).normal(size=(8, 2))
    scalar = EnsembleSampler(8, 2, log_prob).run(
        initial, 40, rng=np.random.default_rng(5)
    )
    batched = EnsembleSampler(
        8, 2, log_prob, log_prob_batch_fn=log_prob_batch
    ).run(initial, 40, rng=np.random.default_rng(5))
    np.testing.assert_array_equal(scalar.chain, batched.chain)
    np.testing.assert_array_equal(scalar.log_probs, batched.log_probs)
    assert scalar.acceptance_rate == batched.acceptance_rate
