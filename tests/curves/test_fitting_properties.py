"""Property-based tests for curve fitting robustness.

Fitting runs thousands of times per experiment inside the predictor;
it must never crash, return non-finite values, or leave the declared
parameter bounds — for *any* curve it is handed, including garbage.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves.fitting import fit_all_models, fit_model
from repro.curves.models import CURVE_MODELS, get_model


@st.composite
def observed_curves(draw):
    """Arbitrary plausible (and implausible) observed curves."""
    n = draw(st.integers(min_value=3, max_value=60))
    kind = draw(st.sampled_from(["rising", "flat", "falling", "noise"]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    x = np.arange(1, n + 1)
    if kind == "rising":
        final = draw(st.floats(min_value=0.2, max_value=1.0))
        curve = 0.1 + (final - 0.1) * (x / n) ** 0.7
    elif kind == "flat":
        level = draw(st.floats(min_value=0.0, max_value=1.0))
        curve = np.full(n, level)
    elif kind == "falling":
        curve = np.linspace(0.8, 0.2, n)
    else:
        curve = rng.random(n)
    noise = draw(st.floats(min_value=0.0, max_value=0.05))
    return np.clip(curve + noise * rng.standard_normal(n), 0.0, 1.0)


@given(y=observed_curves(), name=st.sampled_from(sorted(CURVE_MODELS)))
@settings(max_examples=60, deadline=None)
def test_fit_never_crashes_and_respects_bounds(y, name):
    model = get_model(name)
    fit = fit_model(model, y, restarts=1, max_nfev=30)
    assert np.all(np.isfinite(fit.theta))
    assert np.isfinite(fit.mse) and fit.mse >= 0.0
    assert model.in_bounds(fit.theta)
    prediction = fit.predict(np.arange(1, 200, dtype=float))
    assert np.all(np.isfinite(prediction))


@given(y=observed_curves())
@settings(max_examples=20, deadline=None)
def test_best_family_fits_no_worse_than_constant(y):
    """The ensemble's best family should at least match predicting the
    mean (any saturating family can express a near-constant)."""
    fits = fit_all_models(y, restarts=2, max_nfev=40)
    best_mse = min(fit.mse for fit in fits.values())
    constant_mse = float(np.mean((y - y.mean()) ** 2))
    assert best_mse <= constant_mse * 1.5 + 1e-4


@given(y=observed_curves())
@settings(max_examples=20, deadline=None)
def test_sampled_thetas_always_legal(y):
    rng = np.random.default_rng(0)
    for name in ("pow3", "weibull"):
        model = get_model(name)
        fit = fit_model(model, y, restarts=1, max_nfev=30)
        for theta in fit.sample_thetas(10, rng):
            assert model.in_bounds(theta)
