"""Tests for the parallel prediction engine (pool + prefix-fit cache)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.curves.engine import (
    FitCache,
    ParallelPredictionService,
    PredictionEngineError,
    unwrap_service,
)
from repro.curves.fitting import curve_cache_key, fit_all_models
from repro.curves.predictor import (
    CurvePredictor,
    InstrumentedCurvePredictor,
    LeastSquaresCurvePredictor,
)
from repro.framework.experiment import ExperimentSpec
from repro.generators.random_gen import RandomGenerator
from repro.observability import InMemoryExporter, Recorder
from repro.policies.default import DefaultPolicy
from repro.sim.runner import run_simulation


def _curve(n: int = 8) -> list:
    return list(0.4 + 0.45 * (1.0 - np.exp(-0.35 * np.arange(1, n + 1))))


def _ls_predictor(**overrides) -> LeastSquaresCurvePredictor:
    kwargs = dict(
        n_sample_curves=30,
        restarts=1,
        model_names=("pow3", "weibull", "mmf", "ilog2"),
        max_nfev=40,
        seed=5,
    )
    kwargs.update(overrides)
    return LeastSquaresCurvePredictor(**kwargs)


class _CrashingPredictor(CurvePredictor):
    """Kills its worker process hard, simulating an OOM/segfault."""

    def min_observations(self) -> int:
        return 1

    def predict(self, observed, n_future):
        os._exit(13)


# --------------------------------------------------------------- FitCache


class TestFitCache:
    def test_lru_eviction(self):
        cache = FitCache(maxsize=2)
        fits = fit_all_models(
            _curve(), rng=np.random.default_rng(0), restarts=1
        )
        fit = next(iter(fits.values()))
        k1 = curve_cache_key(np.asarray(_curve(4)))
        k2 = curve_cache_key(np.asarray(_curve(5)))
        k3 = curve_cache_key(np.asarray(_curve(6)))
        cache.put("m", k1, ("p",), fit)
        cache.put("m", k2, ("p",), fit)
        assert cache.get("m", k1, ("p",)) is fit  # refresh k1's recency
        cache.put("m", k3, ("p",), fit)  # evicts k2, the LRU entry
        assert cache.get("m", k2, ("p",)) is None
        assert cache.get("m", k1, ("p",)) is fit
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_counters_and_hit_rate(self):
        cache = FitCache(maxsize=8)
        fits = fit_all_models(
            _curve(), rng=np.random.default_rng(0), restarts=1
        )
        fit = next(iter(fits.values()))
        key = curve_cache_key(np.asarray(_curve()))
        assert cache.get("m", key, ()) is None
        cache.put("m", key, (), fit, warm_started=True)
        assert cache.get("m", key, ()) is fit
        assert cache.hits == 1 and cache.misses == 1
        assert cache.warm_starts == 1
        assert cache.hit_rate == pytest.approx(0.5)
        stats = cache.stats()
        assert stats["size"] == 1

    def test_peek_does_not_count(self):
        cache = FitCache()
        key = curve_cache_key(np.asarray(_curve()))
        assert cache.peek("m", key, ()) is None
        assert cache.misses == 0 and cache.hits == 0

    def test_params_key_isolates_configurations(self):
        """Changing predictor parameters must invalidate cached fits."""
        y = _curve()
        a = _ls_predictor(restarts=1, fit_cache=FitCache())
        b = _ls_predictor(restarts=2, fit_cache=a.fit_cache)
        a.predict(y, 3)
        assert a.fit_cache.misses > 0 and a.fit_cache.hits == 0
        misses_before = a.fit_cache.misses
        # Same curve, different fitting params -> distinct entries.
        b.predict(y, 3)
        assert a.fit_cache.misses > misses_before
        # Re-running either configuration now hits.
        a.predict(y, 3)
        assert a.fit_cache.hits > 0

    def test_rejects_invalid_size(self):
        with pytest.raises(ValueError):
            FitCache(maxsize=0)


def test_fit_all_models_requires_params_key_with_cache():
    with pytest.raises(ValueError, match="params_key"):
        fit_all_models(_curve(), cache=FitCache())


def test_warm_start_reuses_previous_prefix():
    """Growing a curve by one epoch warm-starts from the n-1 fits."""
    cache = FitCache()
    predictor = _ls_predictor(fit_cache=cache)
    y = _curve(10)
    predictor.predict(y[:8], 3)
    warm_before = cache.warm_starts
    predictor.predict(y[:9], 3)
    assert cache.warm_starts > warm_before


def test_cached_predictions_are_reproducible():
    """Hot and cold cache paths must yield the identical prediction."""
    y = _curve()
    cold = _ls_predictor(fit_cache=FitCache()).predict(y, 4)
    warm_predictor = _ls_predictor(fit_cache=FitCache())
    warm_predictor.predict(y, 4)
    hot = warm_predictor.predict(y, 4)  # second call: every fit cached
    np.testing.assert_array_equal(cold.samples, hot.samples)


# ------------------------------------------------- ParallelPredictionService


class TestServiceInline:
    def test_workers_1_is_byte_identical_to_legacy(self):
        y = _curve()
        legacy = _ls_predictor().predict(y, 6)
        service = ParallelPredictionService(_ls_predictor(), workers=1)
        pooled = service.predict(y, 6)
        np.testing.assert_array_equal(legacy.samples, pooled.samples)
        np.testing.assert_array_equal(legacy.horizon, pooled.horizon)
        assert not service.cache_enabled  # no cache at workers=1 default

    def test_empty_curve_rejected(self):
        service = ParallelPredictionService(_ls_predictor(), workers=1)
        with pytest.raises(ValueError, match="at least"):
            service.predict([], 3)

    def test_single_point_curve_rejected(self):
        service = ParallelPredictionService(_ls_predictor(), workers=1)
        with pytest.raises(ValueError, match="at least"):
            service.predict([0.5], 3)

    def test_invalid_horizon_rejected(self):
        service = ParallelPredictionService(_ls_predictor(), workers=1)
        with pytest.raises(ValueError, match="n_future"):
            service.predict(_curve(), 0)

    def test_empty_batch(self):
        service = ParallelPredictionService(_ls_predictor(), workers=1)
        assert service.predict_batch([]) == []

    def test_closed_service_refuses_work(self):
        service = ParallelPredictionService(_ls_predictor(), workers=1)
        service.close()
        with pytest.raises(PredictionEngineError, match="closed"):
            service.predict(_curve(), 3)

    def test_submit_returns_completed_future(self):
        service = ParallelPredictionService(_ls_predictor(), workers=1)
        future = service.submit(_curve(), 3)
        assert future.result().samples.shape[1] == 3

    def test_submit_surfaces_errors_via_future(self):
        service = ParallelPredictionService(_ls_predictor(), workers=1)
        future = service.submit([], 3)
        with pytest.raises(ValueError):
            future.result()

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelPredictionService(_ls_predictor(), workers=0)
        with pytest.raises(ValueError, match="cache_size"):
            ParallelPredictionService(_ls_predictor(), cache_size=-1)

    def test_inline_cache_opt_in(self):
        service = ParallelPredictionService(
            _ls_predictor(), workers=1, use_cache=True, cache_size=64
        )
        service.predict(_curve(), 3)
        service.predict(_curve(), 3)
        stats = service.cache_stats()
        assert stats["hits"] > 0


class TestServicePooled:
    def test_pool_matches_cached_serial(self):
        """Pooled prediction equals the cached single-process result."""
        y = _curve()
        serial = ParallelPredictionService(
            _ls_predictor(), workers=1, use_cache=True, cache_size=64
        )
        expected = serial.predict(y, 4)
        with ParallelPredictionService(
            _ls_predictor(), workers=2, cache_size=64
        ) as pooled:
            batch = pooled.predict_batch([(y, 4), (y, 4), (y, 4)])
        for prediction in batch:
            np.testing.assert_array_equal(expected.samples, prediction.samples)
        serial.close()

    def test_batch_preserves_order(self):
        curves = [(_curve(5 + i), 3) for i in range(5)]
        with ParallelPredictionService(
            _ls_predictor(), workers=2, cache_size=64
        ) as service:
            batch = service.predict_batch(curves)
        assert len(batch) == 5
        for (observed, _), prediction in zip(curves, batch):
            assert prediction.observed.size == len(observed)
            assert prediction.horizon[0] == len(observed) + 1

    def test_pool_cache_counters_aggregate(self):
        y = _curve()
        with ParallelPredictionService(
            _ls_predictor(), workers=2, cache_size=64
        ) as service:
            service.predict_batch([(y, 3)] * 4)
            stats = service.cache_stats()
        assert stats["misses"] > 0
        assert stats["hits"] > 0

    def test_validation_error_propagates_without_killing_pool(self):
        with ParallelPredictionService(
            _ls_predictor(), workers=2, cache_size=64
        ) as service:
            with pytest.raises(ValueError, match="at least"):
                service.predict([], 3)
            # The pool survives a clean exception and keeps serving.
            prediction = service.predict(_curve(), 3)
            assert prediction.samples.shape[1] == 3

    def test_worker_crash_raises_clean_error(self):
        """A dying worker must surface an error, not hang the caller."""
        with ParallelPredictionService(
            _CrashingPredictor(), workers=2, cache_size=0
        ) as service:
            with pytest.raises(PredictionEngineError, match="worker"):
                service.predict_batch([(_curve(), 3)])
            # The service shut itself down to avoid wedged futures.
            with pytest.raises(PredictionEngineError, match="closed"):
                service.predict(_curve(), 3)

    def test_metrics_exported_through_recorder(self):
        recorder = Recorder(exporter=InMemoryExporter())
        y = _curve()
        with ParallelPredictionService(
            _ls_predictor(), workers=2, cache_size=64, recorder=recorder
        ) as service:
            service.predict_batch([(y, 3)] * 4)
        metrics = recorder.metrics
        assert metrics.counter("prediction_requests_total").total == 4
        assert metrics.counter("prediction_cache_hits_total").total > 0
        assert metrics.counter("prediction_cache_misses_total").total > 0
        # Queue drained by the time the batch returned.
        assert metrics.gauge("prediction_pool_queue_depth").value() == 0


class TestInstrumentedTimings:
    """Regression: predictor timings must come from a monotonic clock.

    Wall-clock sources (``time.time``) can step backwards under NTP
    adjustment and record negative durations; the instrumented wrapper
    therefore takes its timestamps from ``time.monotonic`` (injectable
    here so the invariant is testable).
    """

    def test_durations_use_injected_monotonic_clock(self):
        recorder = Recorder(exporter=InMemoryExporter())
        ticks = iter([10.0, 10.25, 11.0, 11.5])
        wrapped = InstrumentedCurvePredictor(
            _ls_predictor(), recorder, monotonic_clock=lambda: next(ticks)
        )
        wrapped.predict(_curve(), 3)
        wrapped.predict(_curve(), 3)
        histogram = recorder.metrics.histogram("predictor_fit_seconds")
        backend = "LeastSquaresCurvePredictor"
        assert histogram.count(backend=backend) == 2
        assert histogram.sum(backend=backend) == pytest.approx(0.75)

    def test_default_clock_records_nonnegative_durations(self):
        recorder = Recorder(exporter=InMemoryExporter())
        wrapped = InstrumentedCurvePredictor(_ls_predictor(), recorder)
        for _ in range(3):
            wrapped.predict(_curve(), 3)
        histogram = recorder.metrics.histogram("predictor_fit_seconds")
        backend = "LeastSquaresCurvePredictor"
        assert histogram.count(backend=backend) == 3
        assert histogram.quantile(0.0, backend=backend) >= 0.0


def test_unwrap_service_walks_wrapper_chains():
    service = ParallelPredictionService(_ls_predictor(), workers=1)
    recorder = Recorder(exporter=InMemoryExporter())
    wrapped = InstrumentedCurvePredictor(service, recorder)
    assert unwrap_service(wrapped) is service
    assert unwrap_service(service) is service
    assert unwrap_service(_ls_predictor()) is None
    assert unwrap_service(None) is None
    service.close()


# -------------------------------------------------------- spec + scheduler


def test_spec_validates_engine_fields():
    with pytest.raises(ValueError, match="predict_workers"):
        ExperimentSpec(predict_workers=0)
    with pytest.raises(ValueError, match="predict_cache_size"):
        ExperimentSpec(predict_cache_size=-1)


def test_workers_1_simulation_is_deterministic(cifar10_workload):
    """Two identical workers=1 runs replay the same decision sequence.

    This is the acceptance bar for the engine: with the default spec
    (no pool, no cache) POP's kill/promote sequence and final result
    must be unchanged run-to-run (and therefore unchanged from the
    pre-engine code path, which this configuration executes verbatim).
    """

    def one_run():
        gen = RandomGenerator(
            cifar10_workload.space, seed=2, max_configs=5
        )
        return run_simulation(
            cifar10_workload,
            DefaultPolicy(),
            generator=gen,
            spec=ExperimentSpec(
                num_machines=2,
                num_configs=5,
                seed=0,
                stop_on_target=False,
                tmax=4 * 3600.0,
            ),
        )

    first, second = one_run(), one_run()
    events_a = [
        (e.kind.value, e.job_id, e.timestamp) for e in first.lifecycle
    ]
    events_b = [
        (e.kind.value, e.job_id, e.timestamp) for e in second.lifecycle
    ]
    assert events_a == events_b
    assert first.best_metric == second.best_metric
    assert first.epochs_trained == second.epochs_trained


def test_scheduler_owns_and_closes_pool(cifar10_workload, fast_predictor):
    """predict_workers>1 runs end-to-end and the pool is torn down."""
    gen = RandomGenerator(cifar10_workload.space, seed=2, max_configs=4)
    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        generator=gen,
        predictor=_ls_predictor(),
        spec=ExperimentSpec(
            num_machines=2,
            num_configs=4,
            seed=0,
            stop_on_target=False,
            tmax=3 * 3600.0,
            predict_workers=2,
            predict_cache_size=128,
        ),
    )
    assert result.epochs_trained > 0
