"""Tests for the learning-curve predictor backends."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves.predictor import (
    CurvePrediction,
    LastValuePredictor,
    LeastSquaresCurvePredictor,
    MCMCCurvePredictor,
)


def _rising_curve(n: int, final=0.8, half=20.0, steep=2.0, noise=0.008, seed=0):
    rng = np.random.default_rng(seed)
    x = np.arange(1, n + 1, dtype=float)
    growth = x**steep / (x**steep + half**steep)
    return np.clip(0.1 + (final - 0.1) * growth + noise * rng.standard_normal(n), 0, 1)


def _flat_curve(n: int, level=0.1, noise=0.005, seed=0):
    rng = np.random.default_rng(seed)
    return np.clip(level + noise * rng.standard_normal(n), 0, 1)


@pytest.fixture(scope="module")
def ls_predictor():
    return LeastSquaresCurvePredictor(n_sample_curves=60, restarts=2, seed=1)


# ------------------------------------------------------ CurvePrediction


def test_prediction_properties():
    pred = CurvePrediction(
        observed=np.array([0.1, 0.2]),
        horizon=np.array([3, 4, 5]),
        samples=np.array([[0.3, 0.4, 0.5], [0.5, 0.6, 0.7]]),
    )
    np.testing.assert_allclose(pred.mean, [0.4, 0.5, 0.6])
    assert pred.prediction_accuracy == pytest.approx(np.std([0.5, 0.7]))
    assert pred.prob_exceeds(0.55, at_epoch=5) == pytest.approx(0.5)
    with pytest.raises(ValueError, match="not in prediction horizon"):
        pred.prob_exceeds(0.5, at_epoch=99)


def test_achieve_by_probabilities_monotone_and_include_observed():
    pred = CurvePrediction(
        observed=np.array([0.1, 0.45]),
        horizon=np.array([3, 4]),
        samples=np.array([[0.3, 0.2], [0.2, 0.5]]),
    )
    probs = pred.achieve_by_probabilities(0.4)
    assert np.all(np.diff(probs) >= 0)
    # Best observed (0.45) already beats 0.4 -> probability 1 everywhere.
    np.testing.assert_allclose(probs, [1.0, 1.0])


# ------------------------------------------------------ LS backend


def test_ls_prediction_shapes(ls_predictor):
    y = _rising_curve(20)
    pred = ls_predictor.predict(y, 30)
    assert pred.samples.shape == (60, 30)
    assert pred.horizon[0] == 21 and pred.horizon[-1] == 50
    assert np.all((pred.samples >= 0) & (pred.samples <= 1))


def test_ls_prediction_extrapolates_rising_curve(ls_predictor):
    y = _rising_curve(40, final=0.8)
    pred = ls_predictor.predict(y, 80)
    assert pred.mean[-1] > 0.6  # clearly above the last observed 0.55


def test_ls_prediction_flat_curve_stays_flat(ls_predictor):
    y = _flat_curve(30, level=0.1)
    pred = ls_predictor.predict(y, 90)
    assert pred.mean[-1] < 0.35
    probs = pred.achieve_by_probabilities(0.77)
    assert probs[-1] < 0.2


def test_ls_prediction_uncertainty_shrinks_with_more_data():
    predictor = LeastSquaresCurvePredictor(n_sample_curves=80, restarts=2, seed=0)
    full = _rising_curve(100)
    early = predictor.predict(full[:10], 20)
    late = predictor.predict(full[:80], 20)
    assert early.std.mean() > late.std.mean()


def test_ls_input_validation(ls_predictor):
    with pytest.raises(ValueError, match="at least 3"):
        ls_predictor.predict([0.1, 0.2], 10)
    with pytest.raises(ValueError, match="n_future"):
        ls_predictor.predict([0.1, 0.2, 0.3], 0)
    with pytest.raises(ValueError, match="1-D"):
        ls_predictor.predict(np.ones((3, 2)), 5)


def test_ls_deterministic_given_seed():
    a = LeastSquaresCurvePredictor(n_sample_curves=20, restarts=1, seed=7)
    b = LeastSquaresCurvePredictor(n_sample_curves=20, restarts=1, seed=7)
    y = _rising_curve(15)
    np.testing.assert_array_equal(
        a.predict(y, 10).samples, b.predict(y, 10).samples
    )


def test_ls_model_subset_and_bad_name():
    p = LeastSquaresCurvePredictor(model_names=("pow3", "weibull"))
    y = _rising_curve(15)
    assert p.predict(y, 5).samples.shape[1] == 5
    with pytest.raises(KeyError):
        LeastSquaresCurvePredictor(model_names=("not_a_model",))


def test_ls_constructor_validation():
    with pytest.raises(ValueError, match="at least 2 sample curves"):
        LeastSquaresCurvePredictor(n_sample_curves=1)
    with pytest.raises(ValueError, match="horizon_inflation"):
        LeastSquaresCurvePredictor(horizon_inflation=-0.1)


# ------------------------------------------------------ last-value backend


def test_last_value_prediction_is_flat():
    predictor = LastValuePredictor(noise=0.0, n_sample_curves=10)
    pred = predictor.predict([0.1, 0.5, 0.42], 5)
    np.testing.assert_allclose(pred.samples, 0.42)


def test_last_value_never_anticipates_overtake():
    """The §2.2(a) point: last-value prediction misses future growth."""
    predictor = LastValuePredictor(noise=0.01, n_sample_curves=50)
    y = _rising_curve(20, final=0.9)  # still low at epoch 20
    pred = predictor.predict(y, 100)
    assert pred.achieve_by_probabilities(0.85)[-1] < 0.5


def test_last_value_min_observations():
    predictor = LastValuePredictor()
    assert predictor.min_observations() == 1
    pred = predictor.predict([0.3], 4)
    assert pred.samples.shape[1] == 4


# ------------------------------------------------------ MCMC backend


@pytest.fixture(scope="module")
def mcmc_predictor():
    return MCMCCurvePredictor(
        n_walkers=32,
        n_samples=120,
        thin=4,
        max_posterior_samples=120,
        model_names=("pow3", "weibull", "ilog2"),
        seed=0,
    )


def test_mcmc_prediction_shapes(mcmc_predictor):
    y = _rising_curve(25)
    pred = mcmc_predictor.predict(y, 20)
    assert pred.samples.shape[1] == 20
    assert pred.samples.shape[0] > 10
    assert np.all((pred.samples >= 0) & (pred.samples <= 1))


def test_mcmc_prediction_tracks_rising_curve(mcmc_predictor):
    y = _rising_curve(40, final=0.8)
    pred = mcmc_predictor.predict(y, 60)
    assert pred.mean[-1] > 0.55


def test_mcmc_flat_curve_low_target_probability(mcmc_predictor):
    y = _flat_curve(30)
    pred = mcmc_predictor.predict(y, 60)
    assert pred.achieve_by_probabilities(0.77)[-1] < 0.3


def test_mcmc_constructor_validation():
    with pytest.raises(ValueError, match="burn_fraction"):
        MCMCCurvePredictor(burn_fraction=1.0)


def test_mcmc_requires_min_observations(mcmc_predictor):
    with pytest.raises(ValueError, match="at least 3"):
        mcmc_predictor.predict([0.1, 0.2], 5)


# ------------------------------------------------------ properties


@given(
    final=st.floats(min_value=0.2, max_value=0.9),
    n_obs=st.integers(min_value=5, max_value=40),
    target=st.floats(min_value=0.1, max_value=0.95),
)
@settings(max_examples=15, deadline=None)
def test_achieve_by_monotone_for_any_curve(final, n_obs, target):
    predictor = LeastSquaresCurvePredictor(
        n_sample_curves=20, restarts=1, model_names=("pow3", "weibull"), seed=0
    )
    y = _rising_curve(n_obs, final=final)
    pred = predictor.predict(y, 30)
    probs = pred.achieve_by_probabilities(target)
    assert np.all(np.diff(probs) >= -1e-12)
    assert np.all((probs >= 0) & (probs <= 1))
