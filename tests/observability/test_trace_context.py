"""Trace-context propagation: inheritance, wire round-trip, restore."""

import threading

from repro.observability.tracing import (
    SpanTracer,
    TraceContext,
    current_trace,
    new_trace_id,
    trace_context,
)


class TestTraceIds:
    def test_root_span_mints_trace(self):
        tracer = SpanTracer(keep_spans=True)
        with tracer.span("root"):
            pass
        (span,) = tracer.spans
        assert span.trace_id and span.span_id
        assert span.parent_id is None

    def test_child_inherits_trace(self):
        tracer = SpanTracer(keep_spans=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, outer_span = tracer.spans  # finish order: inner first
        assert inner.trace_id == outer_span.trace_id
        assert inner.parent_id == outer_span.span_id

    def test_sibling_roots_get_distinct_traces(self):
        tracer = SpanTracer(keep_spans=True)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans
        assert a.trace_id != b.trace_id

    def test_new_trace_id_shape(self):
        first, second = new_trace_id(), new_trace_id()
        assert len(first) == 16 and first != second


class TestContextStack:
    def test_context_restored_after_span(self):
        tracer = SpanTracer(keep_spans=True)
        assert current_trace() is None
        with tracer.span("root"):
            assert current_trace() is not None
        assert current_trace() is None

    def test_context_restored_after_exception(self):
        tracer = SpanTracer(keep_spans=True)
        try:
            with tracer.span("root"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_trace() is None

    def test_contexts_are_thread_local(self):
        tracer = SpanTracer(keep_spans=True)
        seen = {}

        def worker():
            seen["other_thread"] = current_trace()

        with tracer.span("root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["other_thread"] is None


class TestWireRoundTrip:
    def test_to_from_dict(self):
        context = TraceContext(trace_id="t" * 16, span_id="s" * 16)
        wire = context.to_dict()
        assert TraceContext.from_dict(wire) == context

    def test_from_dict_rejects_empty(self):
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict({}) is None
        assert TraceContext.from_dict({"trace_id": ""}) is None

    def test_remote_span_joins_shipped_trace(self):
        # Sender side: capture the active context under a root span.
        sender = SpanTracer(keep_spans=True)
        with sender.span("head.epoch"):
            wire = current_trace().to_dict()
        # Receiver side (another "process"): reactivate and open a span.
        receiver = SpanTracer(keep_spans=True)
        with trace_context(TraceContext.from_dict(wire)):
            with receiver.span("worker.train"):
                pass
        (head_span,) = sender.spans
        (worker_span,) = receiver.spans
        assert worker_span.trace_id == head_span.trace_id
        assert worker_span.parent_id == head_span.span_id

    def test_trace_context_nests_and_restores(self):
        outer = TraceContext(trace_id="a" * 16, span_id="1" * 16)
        inner = TraceContext(trace_id="b" * 16, span_id="2" * 16)
        with trace_context(outer):
            with trace_context(inner):
                assert current_trace() == inner
            assert current_trace() == outer
        assert current_trace() is None

    def test_span_dict_carries_ids(self):
        tracer = SpanTracer(keep_spans=True)
        with tracer.span("root"):
            pass
        document = tracer.spans[0].to_dict()
        assert document["trace_id"] == tracer.spans[0].trace_id
        assert document["span_id"] == tracer.spans[0].span_id
        assert document["parent_id"] is None
