"""JSONL exporter round-trip and numpy coercion tests."""

from __future__ import annotations

import json

import numpy as np

from repro.observability.exporters import (
    InMemoryExporter,
    JsonlExporter,
    encode_event,
    iter_jsonl,
)


class TestJsonlExporter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = [
            {"kind": "sap_decision", "job_id": "job-0001", "data": {"p": 0.12}},
            {"kind": "lifecycle", "job_id": "job-0002", "data": {"event": "killed"}},
        ]
        with JsonlExporter(path) as exporter:
            for event in events:
                exporter.export(event)
            assert exporter.events_written == 2
        assert list(iter_jsonl(path)) == events

    def test_one_compact_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlExporter(path) as exporter:
            exporter.export({"kind": "a", "n": 1})
            exporter.export({"kind": "b", "n": 2})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert " " not in lines[0]  # compact separators

    def test_lazy_open_no_file_when_no_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        exporter = JsonlExporter(path)
        exporter.close()
        assert not path.exists()

    def test_numpy_scalars_coerced(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlExporter(path) as exporter:
            exporter.export(
                {"kind": "prediction", "data": {
                    "p": np.float64(0.25), "epoch": np.int64(7),
                }}
            )
        (event,) = iter_jsonl(path)
        assert event["data"]["p"] == 0.25
        assert event["data"]["epoch"] == 7

    def test_close_is_idempotent(self, tmp_path):
        exporter = JsonlExporter(tmp_path / "e.jsonl")
        exporter.export({"kind": "x"})
        exporter.close()
        exporter.close()

    def test_encode_event_falls_back_to_str(self):
        class Odd:
            def __str__(self):
                return "odd"

        decoded = json.loads(encode_event({"v": Odd()}))
        assert decoded["v"] == "odd"


class TestInMemoryExporter:
    def test_collects_copies(self):
        exporter = InMemoryExporter()
        event = {"kind": "x", "n": 1}
        exporter.export(event)
        event["n"] = 2
        assert exporter.events == [{"kind": "x", "n": 1}]
