"""repro diagnose: journal loading, phase breakdown, critical path."""

import json

from repro.observability.diagnose import (
    classify_phase,
    critical_path,
    diagnose,
    load_journals,
    phase_breakdown,
    render_markdown,
)


def span(name, start, end, wall=0.0, trace="t0", span_id=None,
         parent=None, **attributes):
    return {
        "kind": "span",
        "name": name,
        "start": start,
        "end": end,
        "wall_seconds": wall,
        "trace_id": trace,
        "span_id": span_id or f"{name}-{start}",
        "parent_id": parent,
        "attributes": attributes,
    }


def audit(kind, timestamp, job_id=None, machine_id=None, **data):
    return {
        "kind": kind,
        "timestamp": timestamp,
        "job_id": job_id,
        "machine_id": machine_id,
        "data": data,
    }


class TestClassify:
    def test_phases(self):
        assert classify_phase({"name": "predictor.predict"}) == "predict"
        assert classify_phase({"name": "agent.predict"}) == "predict"
        assert classify_phase({"name": "worker.train_epoch"}) == "train"
        assert classify_phase({"name": "scheduler.process_epoch"}) is None
        assert classify_phase({"name": "cluster.epoch"}) is None


class TestPhaseBreakdown:
    def test_migrate_matches_audit_resume_latency(self):
        events = [
            audit("cluster_migration", 10.0, job_id="j", machine_id="m0",
                  resume_epoch=3, resume_latency=0.25),
            audit("cluster_migration", 20.0, job_id="j", machine_id="m1",
                  resume_epoch=5, resume_latency=0.5),
        ]
        phases = phase_breakdown(events)
        assert phases["seconds"]["migrate"] == 0.75
        assert phases["counts"]["migrate"] == 2

    def test_nested_same_phase_counted_once(self):
        outer = span("agent.predict", 0.0, 4.0, span_id="a")
        inner = span("predictor.predict", 1.0, 3.0, span_id="b", parent="a")
        phases = phase_breakdown([outer, inner])
        assert phases["seconds"]["predict"] == 4.0
        assert phases["counts"]["predict"] == 1

    def test_train_prefers_worker_spans_over_envelope(self):
        events = [
            span("cluster.epoch", 0.0, 10.0, span_id="e"),
            span("worker.train_epoch", 1.0, 7.0, span_id="w", parent="e"),
        ]
        phases = phase_breakdown(events)
        assert phases["seconds"]["train"] == 6.0

    def test_envelope_fallback_without_worker_spans(self):
        events = [span("cluster.epoch", 0.0, 10.0)]
        phases = phase_breakdown(events)
        assert phases["seconds"]["train"] == 10.0

    def test_idle_is_capacity_minus_busy(self):
        events = [
            span("worker.train_epoch", 0.0, 6.0, machine_id="m0"),
            span("worker.train_epoch", 0.0, 4.0, machine_id="m1"),
            audit("lifecycle", 10.0, machine_id="m0"),
        ]
        phases = phase_breakdown(events)
        # Extent 10s x 2 machines = 20 machine-seconds; 10 busy.
        assert phases["extent_seconds"] == 10.0
        assert phases["machines"] == ["m0", "m1"]
        assert phases["seconds"]["idle"] == 10.0

    def test_empty_events(self):
        phases = phase_breakdown([])
        assert phases["extent_seconds"] == 0.0
        assert all(value == 0.0 for value in phases["seconds"].values())


class TestCriticalPath:
    def test_longest_chain_wins(self):
        events = [
            span("cluster.epoch", 0, 10, wall=0.010, span_id="root"),
            span("worker.train_epoch", 1, 7, wall=0.050,
                 span_id="w", parent="root"),
            span("scheduler.process_epoch", 8, 9, wall=0.001,
                 span_id="s", parent="root"),
        ]
        path = critical_path(events)
        assert path["traces"] == 1
        assert path["multi_span_traces"] == 1
        names = [step["name"] for step in path["slowest"]["path"]]
        assert names == ["cluster.epoch", "worker.train_epoch"]
        assert abs(path["slowest"]["wall_seconds"] - 0.060) < 1e-9

    def test_orphan_parent_treated_as_root(self):
        # Worker span shipped without its head parent (head journal
        # missing): it must still appear as a trace root.
        events = [
            span("worker.train_epoch", 0, 5, wall=0.02,
                 span_id="w", parent="missing"),
        ]
        path = critical_path(events)
        assert path["traces"] == 1
        assert path["slowest"]["path"][0]["name"] == "worker.train_epoch"

    def test_traces_sorted_by_wall(self):
        events = [
            span("a", 0, 1, wall=0.001, trace="t1", span_id="a1"),
            span("b", 0, 1, wall=0.900, trace="t2", span_id="b1"),
        ]
        assert critical_path(events)["slowest"]["trace_id"] == "t2"

    def test_node_defaults_to_head(self):
        events = [span("a", 0, 1, wall=0.1, span_id="a1")]
        assert critical_path(events)["slowest"]["path"][0]["node"] == "head"


class TestEndToEnd:
    def test_load_and_render(self, tmp_path):
        journal = tmp_path / "exp-1.jsonl"
        events = [
            span("cluster.epoch", 0, 10, wall=0.01, span_id="r"),
            span("worker.train_epoch", 1, 7, wall=0.02,
                 span_id="w", parent="r", machine_id="m0"),
            audit("cluster_migration", 12.0, job_id="j", machine_id="m0",
                  resume_epoch=2, resume_latency=0.3),
        ]
        journal.write_text(
            "\n".join(json.dumps(event) for event in events) + "\n"
        )
        report = diagnose(load_journals([journal]))
        exp = report["experiments"]["exp-1"]
        assert exp["spans"] == 2
        assert exp["phases"]["seconds"]["migrate"] == 0.3
        markdown = render_markdown(report)
        assert "## exp-1" in markdown
        assert "cluster_migration" in markdown
        assert "| migrate | 0.30 |" in markdown

    def test_corrupt_lines_skipped(self, tmp_path):
        journal = tmp_path / "exp-2.jsonl"
        good = json.dumps(audit("lifecycle", 1.0))
        journal.write_text(good + "\n\x00\x00garbage\n" + good + "\n")
        journals = load_journals([journal])
        assert len(journals["exp-2"]) == 2

    def test_multiple_journals_are_separate_experiments(self, tmp_path):
        for name in ("alpha", "beta"):
            (tmp_path / f"{name}.jsonl").write_text(
                json.dumps(audit("lifecycle", 1.0)) + "\n"
            )
        report = diagnose(
            load_journals(
                [tmp_path / "alpha.jsonl", tmp_path / "beta.jsonl"]
            )
        )
        assert set(report["experiments"]) == {"alpha", "beta"}
