"""TelemetryAggregator: ingest semantics, history, event forwarding."""

from repro.observability.aggregator import TelemetryAggregator
from repro.observability.metrics import MetricsRegistry


def make_batch(seq=0, value=1.0, spans=(), audit=(), meta=None):
    registry = MetricsRegistry()
    registry.counter("epochs_total").inc(value)
    batch = {
        "seq": seq,
        "metrics": registry.to_dict(),
        "spans": list(spans),
        "audit": list(audit),
    }
    if meta is not None:
        batch["meta"] = meta
    return batch


class TestIngest:
    def test_latest_snapshot_wins(self):
        aggregator = TelemetryAggregator()
        aggregator.ingest("n0", make_batch(seq=0, value=1.0))
        aggregator.ingest("n0", make_batch(seq=1, value=5.0))
        node = aggregator.node("n0")
        assert node["seq"] == 1
        samples = node["metrics"]["epochs_total"]["samples"]
        assert samples[0]["value"] == 5.0

    def test_empty_batch_ignored(self):
        aggregator = TelemetryAggregator()
        aggregator.ingest("n0", None)
        aggregator.ingest("n0", {})
        assert aggregator.node_ids == []

    def test_bare_metrics_batch_valid(self):
        aggregator = TelemetryAggregator()
        registry = MetricsRegistry()
        registry.gauge("up").set(1)
        aggregator.ingest("n0", {"metrics": registry.to_dict()})
        assert aggregator.node_ids == ["n0"]

    def test_meta_accumulates(self):
        aggregator = TelemetryAggregator()
        aggregator.ingest("n0", make_batch(meta={"a": 1}))
        aggregator.ingest("n0", make_batch(seq=1, meta={"b": 2}))
        assert aggregator.node("n0")["meta"] == {"a": 1, "b": 2}

    def test_span_and_audit_counts(self):
        aggregator = TelemetryAggregator()
        aggregator.ingest(
            "n0", make_batch(spans=[{"kind": "span"}], audit=[{}, {}])
        )
        node = aggregator.node("n0")
        assert node["spans_received"] == 1
        assert node["audit_received"] == 2

    def test_age_uses_injected_clock(self):
        now = [100.0]
        aggregator = TelemetryAggregator(clock=lambda: now[0])
        aggregator.ingest("n0", make_batch())
        now[0] = 103.5
        assert aggregator.node("n0")["age_seconds"] == 3.5


class TestHistory:
    def test_samples_flattened(self):
        aggregator = TelemetryAggregator(clock=lambda: 1.0)
        aggregator.ingest("n0", make_batch(value=4.0))
        (sample,) = aggregator.history()
        assert sample["node"] == "n0"
        assert sample["values"]["epochs_total"] == 4.0

    def test_ring_buffer_bounded(self):
        aggregator = TelemetryAggregator(history_samples=3)
        for i in range(10):
            aggregator.ingest("n0", make_batch(seq=i, value=float(i)))
        history = aggregator.history()
        assert len(history) == 3
        assert [s["values"]["epochs_total"] for s in history] == [
            7.0, 8.0, 9.0,
        ]

    def test_summary_flattens_to_count_and_sum(self):
        registry = MetricsRegistry()
        registry.histogram("rtt").observe(0.5)
        registry.histogram("rtt").observe(1.5)
        aggregator = TelemetryAggregator()
        aggregator.ingest_registry("n0", registry)
        (sample,) = aggregator.history()
        assert sample["values"]["rtt_count"] == 2.0
        assert sample["values"]["rtt_sum"] == 2.0


class TestEventForwarding:
    def test_on_event_sees_spans_then_audit(self):
        seen = []
        aggregator = TelemetryAggregator()
        aggregator.on_event = lambda node, event: seen.append((node, event))
        aggregator.ingest(
            "n0",
            make_batch(
                spans=[{"kind": "span", "name": "s"}],
                audit=[{"kind": "lifecycle"}],
            ),
        )
        assert seen == [
            ("n0", {"kind": "span", "name": "s"}),
            ("n0", {"kind": "lifecycle"}),
        ]

    def test_no_callback_is_fine(self):
        aggregator = TelemetryAggregator()
        aggregator.ingest("n0", make_batch(spans=[{"kind": "span"}]))


class TestToDict:
    def test_document_shape(self):
        aggregator = TelemetryAggregator(clock=lambda: 2.0)
        aggregator.ingest("n1", make_batch())
        aggregator.ingest("n0", make_batch())
        document = aggregator.to_dict()
        assert list(document["nodes"]) == ["n0", "n1"]
        assert document["kind_conflicts"] == {}
        assert len(document["history"]) == 2
