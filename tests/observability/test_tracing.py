"""Unit tests for the span tracer."""

from __future__ import annotations

import pytest

from repro.observability.tracing import NULL_TRACER, NullTracer, SpanTracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSpanTracer:
    def test_span_records_experiment_clock_interval(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("fit", backend="ls"):
            clock.now = 3.0
        (span,) = tracer.spans
        assert span.name == "fit"
        assert span.start == 0.0
        assert span.end == 3.0
        assert span.duration == 3.0
        assert span.attributes == {"backend": "ls"}
        assert span.wall_seconds >= 0.0

    def test_bind_clock_late(self):
        tracer = SpanTracer()
        clock = FakeClock()
        clock.now = 7.0
        tracer.bind_clock(clock)
        with tracer.span("op"):
            pass
        assert tracer.spans[0].start == 7.0

    def test_set_attaches_attributes_mid_span(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("op") as span:
            span.set(n=4)
        assert tracer.spans[0].attributes["n"] == 4

    def test_exception_recorded_and_propagated(self):
        tracer = SpanTracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("op"):
                raise RuntimeError("boom")
        assert tracer.spans[0].attributes["error"] == "RuntimeError"

    def test_summary_aggregates_per_name(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        for _ in range(3):
            with tracer.span("fit"):
                clock.now += 2.0
        with tracer.span("snapshot"):
            pass
        summary = tracer.summary()
        assert summary["fit"]["count"] == 3
        assert summary["fit"]["experiment_seconds"] == pytest.approx(6.0)
        assert summary["snapshot"]["count"] == 1

    def test_keep_spans_false_still_summarises(self):
        tracer = SpanTracer(clock=FakeClock(), keep_spans=False)
        with tracer.span("op"):
            pass
        assert tracer.spans == []
        assert tracer.summary()["op"]["count"] == 1

    def test_max_spans_bounds_memory(self):
        tracer = SpanTracer(clock=FakeClock(), max_spans=2)
        for _ in range(5):
            with tracer.span("op"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.summary()["op"]["count"] == 5

    def test_on_span_hook_fires(self):
        seen = []
        tracer = SpanTracer(clock=FakeClock(), on_span=seen.append)
        with tracer.span("op"):
            pass
        assert len(seen) == 1
        assert seen[0].to_dict()["kind"] == "span"


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", a=1) as span:
            span.set(b=2)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.summary() == {}

    def test_null_span_is_shared_singleton(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")
