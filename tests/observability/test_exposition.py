"""Prometheus text exposition edge cases.

Label values are user-controlled strings (job ids, reasons, file
paths) and must survive the exposition format's escaping rules;
summary quantile series must expose in ascending order like histogram
buckets; and merging registries from many nodes must tolerate the same
metric name arriving with different kinds.
"""

import pytest

from repro.observability.aggregator import TelemetryAggregator
from repro.observability.metrics import (
    Histogram,
    MetricsRegistry,
    escape_label_value,
    format_value,
    render_label_set,
)


class TestLabelEscaping:
    def test_plain_value_untouched(self):
        assert escape_label_value("machine-01") == "machine-01"

    def test_double_quotes_escaped(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'

    def test_backslashes_escaped(self):
        assert escape_label_value("C:\\runs\\x") == "C:\\\\runs\\\\x"

    def test_newlines_escaped(self):
        assert escape_label_value("a\nb") == "a\\nb"

    def test_backslash_before_quote_order(self):
        # Escaping backslashes first must not double-escape the
        # backslash introduced for the quote.
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_render_label_set_empty(self):
        assert render_label_set(()) == ""

    def test_render_label_set_escapes_values(self):
        rendered = render_label_set((("reason", 'kill\n"budget"'),))
        assert rendered == '{reason="kill\\n\\"budget\\""}'

    def test_counter_line_with_hostile_label(self):
        registry = MetricsRegistry()
        registry.counter("kills_total").inc(reason='oom "hard"\nnode')
        text = registry.render_text()
        assert 'reason="oom \\"hard\\"\\nnode"' in text
        # The raw newline must never reach the exposition.
        for line in text.splitlines():
            assert "\n" not in line

    def test_aggregator_escapes_node_label(self):
        registry = MetricsRegistry()
        registry.gauge("worker_up").set(1.0)
        aggregator = TelemetryAggregator()
        aggregator.ingest_registry('node"1"', registry)
        text = aggregator.render_text()
        assert 'node="node\\"1\\""' in text


class TestQuantileOrdering:
    def test_exposition_order_ascending(self):
        histogram = Histogram("rtt", quantiles=(0.99, 0.5, 0.9))
        assert histogram.quantiles == (0.5, 0.9, 0.99)

    def test_duplicate_quantiles_deduped(self):
        histogram = Histogram("rtt", quantiles=(0.9, 0.5, 0.9))
        assert histogram.quantiles == (0.5, 0.9)

    def test_rendered_series_ascend(self):
        histogram = Histogram("rtt", quantiles=(0.99, 0.5, 0.9))
        for value in (5.0, 1.0, 3.0, 2.0, 4.0):
            histogram.observe(value)
        quantile_lines = [
            line for line in histogram.render() if "quantile=" in line
        ]
        order = [
            float(line.split('quantile="')[1].split('"')[0])
            for line in quantile_lines
        ]
        assert order == sorted(order)
        # And the values are monotone with the quantiles.
        values = [float(line.rsplit(" ", 1)[1]) for line in quantile_lines]
        assert values == sorted(values)

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("rtt", quantiles=(1.5,))

    def test_infinity_formatting(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"


class TestMergedRegistryCollisions:
    def _aggregate(self, *node_registries):
        aggregator = TelemetryAggregator()
        for node, registry in node_registries:
            aggregator.ingest_registry(node, registry)
        return aggregator

    def test_same_kind_merges_under_node_labels(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("epochs_total").inc(3)
        b.counter("epochs_total").inc(5)
        text = self._aggregate(("n0", a), ("n1", b)).render_text()
        assert text.count("# TYPE epochs_total counter") == 1
        assert 'epochs_total{node="n0"} 3' in text
        assert 'epochs_total{node="n1"} 5' in text

    def test_kind_conflict_keeps_first_and_counts(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("busy").inc(2)
        b.gauge("busy").set(7)
        aggregator = self._aggregate(("n0", a), ("n1", b))
        text = aggregator.render_text()
        # First kind (sorted node order) wins; the other is dropped.
        assert "# TYPE busy counter" in text
        assert 'busy{node="n0"} 2' in text
        assert 'busy{node="n1"}' not in text
        assert (
            'telemetry_kind_conflicts_total{metric="busy"} 1' in text
        )
        assert aggregator.to_dict()["kind_conflicts"] == {"busy": 1}

    def test_conflict_with_base_registry(self):
        base = MetricsRegistry()
        base.gauge("busy").set(1)
        other = MetricsRegistry()
        other.counter("busy").inc()
        aggregator = self._aggregate(("n0", other))
        text = aggregator.render_text(base=base)
        # The base (unlabelled) registry renders first and wins.
        assert "# TYPE busy gauge" in text
        assert "busy 1" in text.splitlines()

    def test_summary_merges_with_node_label(self):
        a = MetricsRegistry()
        a.histogram("rtt_seconds").observe(0.25)
        text = self._aggregate(("n0", a)).render_text()
        assert 'rtt_seconds_count{node="n0"} 1' in text
        assert 'rtt_seconds_sum{node="n0"} 0.25' in text
        assert 'quantile="0.5",node="n0"' in text.replace("'", '"')
