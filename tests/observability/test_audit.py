"""Audit-trail contents for scripted POP runs, plus the CLI acceptance
path (``--emit-events`` / ``--metrics-out``)."""

from __future__ import annotations

import pytest

from repro.core.classification import CONFIDENCE_LOWER_BOUND
from repro.core.pop import POPPolicy
from repro.framework.experiment import ExperimentSpec
from repro.generators.random_gen import RandomGenerator
from repro.observability import AuditTrail, InMemoryExporter, Recorder, iter_jsonl
from repro.sim.runner import run_simulation


class TestAuditTrail:
    def test_record_and_query(self):
        trail = AuditTrail()
        trail.record("sap_decision", job_id="j1", decision="continue")
        trail.record("sap_decision", job_id="j2", decision="terminate")
        trail.record("lifecycle", job_id="j2", event="killed")
        assert len(trail.query(kind="sap_decision")) == 2
        (kill,) = trail.query(kind="sap_decision", decision="terminate")
        assert kill.job_id == "j2"
        assert trail.query(job_id="j2", kind="lifecycle")[0].data["event"] == "killed"

    def test_records_stream_to_exporter(self):
        exporter = InMemoryExporter()
        trail = AuditTrail(exporter=exporter)
        trail.record("prediction", job_id="j1", p=0.4)
        assert exporter.events == [
            {
                "kind": "prediction",
                "timestamp": 0.0,
                "job_id": "j1",
                "machine_id": None,
                "data": {"p": 0.4},
            }
        ]

    def test_clock_stamps_records(self):
        now = {"t": 10.0}
        trail = AuditTrail(clock=lambda: now["t"])
        trail.record("lifecycle")
        now["t"] = 25.0
        trail.record("lifecycle")
        assert [r.timestamp for r in trail.records] == [10.0, 25.0]


@pytest.fixture(scope="module")
def pop_run(cifar10_workload, fast_predictor):
    """One instrumented POP run shared by the assertions below."""
    recorder = Recorder(exporter=InMemoryExporter())
    generator = RandomGenerator(cifar10_workload.space, seed=271, max_configs=20)
    spec = ExperimentSpec(num_machines=4, num_configs=20, seed=0, tmax=6 * 3600.0)
    result = run_simulation(
        cifar10_workload,
        POPPolicy(),
        generator=generator,
        spec=spec,
        predictor=fast_predictor,
        recorder=recorder,
    )
    return result, recorder


class TestPopAuditContents:
    def test_every_terminate_decision_carries_its_inputs(self, pop_run):
        _, recorder = pop_run
        kills = recorder.audit.query(kind="sap_decision", decision="terminate")
        assert kills, "the scripted run should kill at least one job"
        for record in kills:
            data = record.data
            if data["reason"] == "confidence_below_bound":
                assert data["p"] < data["bound"]
                assert data["bound"] == CONFIDENCE_LOWER_BOUND
            elif data["reason"] == "domain_poor":
                assert data["kill_threshold"] > 0.0
                assert data["best_metric"] < data["kill_threshold"]
            else:  # pragma: no cover - new kill reasons must carry inputs
                pytest.fail(f"unexpected kill reason {data['reason']!r}")

    def test_terminated_jobs_match_audit_trail(self, pop_run):
        result, recorder = pop_run
        killed_in_audit = {
            r.job_id
            for r in recorder.audit.query(kind="sap_decision", decision="terminate")
        }
        killed_in_result = {
            job.job_id for job in result.jobs if job.state.value == "terminated"
        }
        assert killed_in_audit == killed_in_result

    def test_classifications_report_threshold_and_slots(self, pop_run):
        _, recorder = pop_run
        rounds = recorder.audit.query(kind="pop_classification")
        assert rounds
        for record in rounds:
            assert 0.0 <= record.data["threshold"] <= 1.0
            assert record.data["promising_slots"] >= 0
            # Every active job is categorised; confidences cover the
            # subset that already has a curve-prediction estimate.
            assert len(record.data["categories"]) == record.data["active_jobs"]
            assert set(record.data["confidences"]) <= set(record.data["categories"])

    def test_predictions_recorded_with_confidence_and_ert(self, pop_run):
        result, recorder = pop_run
        predictions = recorder.audit.query(kind="prediction")
        assert len(predictions) == result.predictions_made
        for record in predictions:
            assert 0.0 <= record.data["confidence"] <= 1.0
            assert record.data["expected_remaining_seconds"] >= 0.0

    def test_result_summary_reports_kill_breakdown(self, pop_run):
        result, recorder = pop_run
        summary = result.summary()
        kills = recorder.audit.query(kind="sap_decision", decision="terminate")
        assert sum(summary["kills_by_reason"].values()) == len(kills)
        assert summary["audit_events"] == len(recorder.audit.records)


class TestCliAcceptance:
    def test_emit_events_and_metrics_out(self, tmp_path):
        from repro.cli import main

        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.txt"
        code = main([
            "run", "--workload", "cifar10", "--policy", "pop",
            "--configs", "12", "--tmax-hours", "6",
            "--emit-events", str(events),
            "--metrics-out", str(metrics),
        ])
        assert code == 0

        decisions = [
            e for e in iter_jsonl(events) if e["kind"] == "sap_decision"
        ]
        assert decisions
        kills = [e for e in decisions if e["data"]["decision"] == "terminate"]
        for kill in kills:
            data = kill["data"]
            assert "reason" in data
            assert ("p" in data and "bound" in data) or "kill_threshold" in data

        text = metrics.read_text()
        assert "scheduler_kills_total" in text
        # Fit times are labelled by predictor backend, so the quantile
        # series look like predictor_fit_seconds{backend="...",quantile="0.5"}.
        assert "# TYPE predictor_fit_seconds summary" in text
        assert 'quantile="0.5"' in text
        assert "predictor_fit_seconds_count" in text
        assert "slots_promising_ratio" in text
