"""Disabled observability must be invisible in results and behaviour."""

from __future__ import annotations

from repro.core.pop import POPPolicy
from repro.framework.experiment import ExperimentSpec
from repro.framework.policy_api import PolicyContext
from repro.generators.random_gen import RandomGenerator
from repro.observability import NULL_RECORDER, NullRecorder, Recorder
from repro.sim.runner import run_simulation


def _run(cifar10_workload, fast_predictor, recorder):
    generator = RandomGenerator(cifar10_workload.space, seed=11, max_configs=8)
    spec = ExperimentSpec(num_machines=3, num_configs=8, seed=0, tmax=4 * 3600.0)
    return run_simulation(
        cifar10_workload,
        POPPolicy(),
        generator=generator,
        spec=spec,
        predictor=fast_predictor,
        recorder=recorder,
    )


class TestNoopRecorder:
    def test_result_json_byte_identical_with_and_without_null_recorder(
        self, cifar10_workload, fast_predictor, tmp_path
    ):
        baseline = _run(cifar10_workload, fast_predictor, recorder=None)
        explicit = _run(cifar10_workload, fast_predictor, recorder=NullRecorder())
        path_a = tmp_path / "baseline.json"
        path_b = tmp_path / "explicit.json"
        baseline.save_json(path_a)
        explicit.save_json(path_b)
        assert path_a.read_bytes() == path_b.read_bytes()
        assert baseline.observability is None

    def test_live_recorder_changes_only_the_observability_digest(
        self, cifar10_workload, fast_predictor
    ):
        baseline = _run(cifar10_workload, fast_predictor, recorder=None)
        observed = _run(cifar10_workload, fast_predictor, recorder=Recorder())
        a = baseline.to_dict()
        b = observed.to_dict()
        assert a.pop("observability") is None
        assert b.pop("observability") is not None
        assert a == b

    def test_null_recorder_is_fully_inert(self):
        NULL_RECORDER.metrics.counter("anything").inc(reason="x")
        NULL_RECORDER.metrics.gauge("g").set(1.0)
        NULL_RECORDER.metrics.histogram("h").observe(2.0)
        with NULL_RECORDER.tracer.span("op") as span:
            span.set(a=1)
        NULL_RECORDER.audit.record("sap_decision", job_id="j", p=0.1)
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.metrics.render_text() == ""
        assert NULL_RECORDER.snapshot() == {}
        assert NULL_RECORDER.audit.records == []
        NULL_RECORDER.close()

    def test_policy_context_defaults_to_null_recorder(self):
        context = PolicyContext.__dataclass_fields__["recorder"]
        assert context.default is NULL_RECORDER
