"""Unit tests for the zero-dependency metrics registry."""

from __future__ import annotations

import json

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    normalize_name,
)


class TestNormalizeName:
    def test_dots_and_dashes_become_underscores(self):
        assert normalize_name("scheduler.kills-total") == "scheduler_kills_total"

    def test_valid_name_passes_through(self):
        assert normalize_name("epoch_duration_seconds") == "epoch_duration_seconds"

    def test_invalid_characters_rejected(self):
        with pytest.raises(ValueError):
            normalize_name("bad name!")


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == pytest.approx(3.5)

    def test_labels_track_independent_series(self):
        c = Counter("kills")
        c.inc(reason="poor")
        c.inc(reason="poor")
        c.inc(reason="confidence")
        assert c.value(reason="poor") == 2.0
        assert c.value(reason="confidence") == 1.0
        assert c.total == 3.0

    def test_negative_increment_rejected(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_label_order_does_not_matter(self):
        c = Counter("c")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(4.0)
        g.inc(1.0)
        g.dec(2.5)
        assert g.value() == pytest.approx(2.5)

    def test_gauge_can_go_negative(self):
        g = Gauge("g")
        g.dec(3.0)
        assert g.value() == -3.0


class TestHistogram:
    def test_count_and_sum(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(6.0)

    def test_quantiles_exact_on_known_data(self):
        h = Histogram("h")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        # Linear interpolation on the sorted samples:
        # position = q * (n - 1), n = 100.
        assert h.quantile(0.0) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(100.0)
        assert h.quantile(0.5) == pytest.approx(50.5)
        assert h.quantile(0.9) == pytest.approx(90.1)

    def test_quantile_interpolates_between_samples(self):
        h = Histogram("h")
        h.observe(0.0)
        h.observe(10.0)
        assert h.quantile(0.25) == pytest.approx(2.5)

    def test_quantile_of_empty_histogram_is_nan(self):
        import math

        h = Histogram("h")
        assert math.isnan(h.quantile(0.5))

    def test_quantile_bounds_checked(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_observations_after_quantile_are_included(self):
        # quantile() sorts lazily; make sure later observations are not
        # lost to a stale sorted cache.
        h = Histogram("h")
        h.observe(1.0)
        assert h.quantile(1.0) == 1.0
        h.observe(9.0)
        assert h.quantile(1.0) == 9.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("scheduler.kills_total")
        b = reg.counter("scheduler_kills_total")
        assert a is b

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_render_text_exposition(self):
        reg = MetricsRegistry()
        kills = reg.counter("scheduler.kills_total", help="Kills by reason")
        kills.inc(reason="poor")
        ratio = reg.gauge("slots.promising_ratio")
        ratio.set(0.75)
        fits = reg.histogram("predictor.fit_seconds")
        fits.observe(0.25)
        text = reg.render_text()
        assert "# TYPE scheduler_kills_total counter" in text
        assert 'scheduler_kills_total{reason="poor"} 1' in text
        assert "slots_promising_ratio 0.75" in text
        assert "# TYPE predictor_fit_seconds summary" in text
        assert 'predictor_fit_seconds{quantile="0.5"} 0.25' in text
        assert "predictor_fit_seconds_count 1" in text
        assert "predictor_fit_seconds_sum 0.25" in text
        assert text.endswith("\n")

    def test_to_dict_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(2.0)
        json.dumps(reg.to_dict())
