"""repro top: pure rendering of the /telemetry document."""

from repro.observability.aggregator import TelemetryAggregator
from repro.observability.metrics import MetricsRegistry
from repro.observability.top import cache_hit_rate, node_row, render_top


def head_registry():
    registry = MetricsRegistry()
    registry.gauge("cluster_nodes_up").set(3)
    registry.counter("cluster_migrations_total").inc()
    registry.counter("scheduler_epochs_total").inc(42)
    registry.gauge("experiment_best_metric").set(0.91)
    registry.gauge("pop_best_ert_seconds").set(600.0)
    registry.histogram("cluster_heartbeat_rtt_seconds").observe(
        0.002, machine_id="machine-00"
    )
    return registry


def telemetry_doc():
    aggregator = TelemetryAggregator(clock=lambda: 1.0)
    aggregator.ingest_registry(
        "head",
        head_registry(),
        meta={
            "heartbeat": {
                "machine-00": {
                    "state": "up", "connected": True,
                    "misses": 0, "last_seq": 9,
                }
            }
        },
    )
    worker = MetricsRegistry()
    worker.gauge("worker_up").set(1)
    worker.counter("prediction_cache_hits_total").inc(3)
    worker.counter("prediction_cache_misses_total").inc(1)
    aggregator.ingest_registry("machine-00", worker)
    return aggregator.to_dict()


class TestCacheHitRate:
    def test_rate(self):
        registry = MetricsRegistry()
        registry.counter("prediction_cache_hits_total").inc(3)
        registry.counter("prediction_cache_misses_total").inc(1)
        assert cache_hit_rate(registry.to_dict()) == 0.75

    def test_absent_counters(self):
        assert cache_hit_rate({}) is None

    def test_zero_lookups(self):
        registry = MetricsRegistry()
        registry.counter("prediction_cache_hits_total")
        assert cache_hit_rate(registry.to_dict()) == 0.0


class TestNodeRow:
    def test_extracts_dashboard_fields(self):
        doc = telemetry_doc()
        row = node_row("head", doc["nodes"]["head"])
        assert row["epochs"] == 42.0
        assert row["best_metric"] == 0.91
        assert row["best_ert"] == 600.0

    def test_worker_without_scheduler(self):
        doc = telemetry_doc()
        row = node_row("machine-00", doc["nodes"]["machine-00"])
        assert row["epochs"] is None
        assert row["cache_hit_rate"] == 0.75


class TestRenderTop:
    def test_sections_present(self):
        frame = render_top(telemetry_doc(), url="http://x:1")
        assert "repro top" in frame
        assert "http://x:1" in frame
        assert "2 node(s)" in frame
        assert "machine-00" in frame
        assert "nodes_up=3" in frame
        assert "rtt=2.0ms" in frame
        assert "0.9100" in frame       # best metric
        assert "10.0min" in frame      # ERT
        assert frame.endswith("\n")

    def test_empty_telemetry(self):
        frame = render_top({"nodes": {}, "history": []})
        assert "no telemetry yet" in frame

    def test_kind_conflict_warning(self):
        frame = render_top(
            {"nodes": {}, "history": [], "kind_conflicts": {"busy": 2}}
        )
        assert "kind conflicts" in frame
        assert "busy" in frame


class TestFleetSection:
    def fleet_doc(self):
        aggregator = TelemetryAggregator(clock=lambda: 1.0)
        head = MetricsRegistry()
        head.gauge("cost_workers_up").set(2, **{"class": "on_demand"})
        head.gauge("cost_workers_up").set(1, **{"class": "spot"})
        head.gauge("cost_spent_dollars").set(3.25, experiment="exp-1")
        head.gauge("cost_budget_dollars").set(10.0, experiment="exp-1")
        head.gauge("cost_budget_remaining_dollars").set(
            6.75, experiment="exp-1"
        )
        aggregator.ingest_registry("head", head)
        other = MetricsRegistry()
        other.gauge("cost_workers_up").set(3, **{"class": "on_demand"})
        other.gauge("cost_spent_dollars").set(1.5, experiment="exp-2")
        aggregator.ingest_registry("exp-2", other)
        return aggregator.to_dict()

    def test_workers_summed_across_nodes(self):
        frame = render_top(self.fleet_doc())
        assert "fleet: workers up on_demand=5 spot=1" in frame

    def test_per_experiment_spend_vs_budget(self):
        frame = render_top(self.fleet_doc())
        assert "exp-1" in frame
        assert "$3.25" in frame
        assert "$10.00" in frame
        assert "$6.75" in frame
        # An unbudgeted experiment renders its spend with no budget.
        assert "exp-2" in frame
        assert "$1.50" in frame

    def test_absent_without_cost_gauges(self):
        frame = render_top(telemetry_doc())
        assert "fleet:" not in frame


class TestTrainingSection:
    def training_doc(self):
        aggregator = TelemetryAggregator(clock=lambda: 1.0)
        trainer = MetricsRegistry()
        trainer.counter("learn_episodes_total").inc(128)
        trainer.gauge("learn_best_reward").set(1.234)
        trainer.gauge("learn_episode_reward").set(0.987)
        trainer.gauge("learn_policy_entropy").set(1.5)
        aggregator.ingest_registry("trainer", trainer)
        return aggregator.to_dict()

    def test_one_line_panel(self):
        frame = render_top(self.training_doc())
        assert (
            "training[trainer]: episodes=128 best=1.234 "
            "reward=0.987 entropy=1.50" in frame
        )

    def test_absent_without_learn_metrics(self):
        frame = render_top(telemetry_doc())
        assert "training[" not in frame
