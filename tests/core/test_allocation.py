"""Tests for dynamic promising/opportunistic slot allocation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import compute_slot_allocation, slot_curves


def test_no_confidences_means_all_exploration():
    alloc = compute_slot_allocation([], total_slots=8)
    assert alloc.promising_slots == 0
    assert alloc.threshold == 1.0
    assert alloc.num_promising == 0


def test_none_entries_ignored():
    alloc = compute_slot_allocation([None, None], total_slots=4)
    assert alloc.promising_slots == 0


def test_single_confident_config():
    alloc = compute_slot_allocation([0.9], total_slots=4)
    # desired(0.9)=1, deserved(0.9)=3.6 -> effective = 1
    assert alloc.threshold == pytest.approx(0.9)
    assert alloc.promising_slots == 1
    assert alloc.num_promising == 1


def test_crossing_point_selection():
    # p values: many mediocre, few strong.
    confidences = [0.1, 0.1, 0.2, 0.2, 0.6, 0.8]
    alloc = compute_slot_allocation(confidences, total_slots=4)
    # at 0.6: desired=2, deserved=2.4 -> eff 2.0
    # at 0.8: desired=1, deserved=3.2 -> eff 1.0
    # at 0.2: desired=4, deserved=0.8 -> eff 0.8
    assert alloc.threshold == pytest.approx(0.6)
    assert alloc.promising_slots == 2
    assert alloc.num_promising == 2


def test_tie_prefers_higher_threshold():
    # Both thresholds give effective 1.0 -> pick the more confident.
    confidences = [0.5, 1.0]
    alloc = compute_slot_allocation(confidences, total_slots=2)
    # at 0.5: desired=2, deserved=1.0 -> eff 1.0
    # at 1.0: desired=1, deserved=2.0 -> eff 1.0  (tie -> prefer 1.0)
    assert alloc.threshold == pytest.approx(1.0)
    assert alloc.promising_slots == 1


def test_slots_per_config_scales_desired():
    confidences = [0.9, 0.9]
    one = compute_slot_allocation(confidences, total_slots=8, slots_per_config=1)
    two = compute_slot_allocation(confidences, total_slots=8, slots_per_config=2)
    assert two.effective_slots >= one.effective_slots


def test_validation_errors():
    with pytest.raises(ValueError, match="total_slots"):
        compute_slot_allocation([0.5], total_slots=0)
    with pytest.raises(ValueError, match="slots_per_config"):
        compute_slot_allocation([0.5], total_slots=2, slots_per_config=0)
    with pytest.raises(ValueError, match="lie in"):
        compute_slot_allocation([1.5], total_slots=2)


def test_slot_curves_shapes_and_monotonicity():
    confidences = [0.1, 0.3, 0.5, 0.9]
    p_grid, desired, deserved = slot_curves(confidences, total_slots=10)
    assert p_grid.shape == desired.shape == deserved.shape
    # S_desired non-increasing in p; S_deserved non-decreasing (§3.2).
    assert np.all(np.diff(desired) <= 0)
    assert np.all(np.diff(deserved) >= 0)
    assert desired[0] == 4  # everyone satisfies p=0
    assert deserved[-1] == 10


def test_slot_curves_validation():
    with pytest.raises(ValueError, match="grid points"):
        slot_curves([0.5], total_slots=2, grid_points=1)


@given(
    confidences=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=40
    ),
    total_slots=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=100, deadline=None)
def test_allocation_invariants(confidences, total_slots):
    """Properties from §3.2 that must hold for any confidence set."""
    alloc = compute_slot_allocation(confidences, total_slots=total_slots)
    assert 0 <= alloc.promising_slots <= total_slots
    assert 0.0 <= alloc.threshold <= 1.0
    assert alloc.promising_slots <= alloc.effective_slots + 1e-9
    # Effective slots can never exceed either bound at the threshold.
    n_satisfying = sum(1 for p in confidences if p >= alloc.threshold)
    assert alloc.effective_slots <= n_satisfying + 1e-9
    assert alloc.effective_slots <= total_slots * alloc.threshold + 1e-9


@given(
    confidences=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=30
    ),
    total_slots=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=60, deadline=None)
def test_chosen_threshold_maximises_effective(confidences, total_slots):
    alloc = compute_slot_allocation(confidences, total_slots=total_slots)
    for p in confidences:
        desired = sum(1 for c in confidences if c >= p)
        effective = min(float(desired), total_slots * p)
        assert effective <= alloc.effective_slots + 1e-9
