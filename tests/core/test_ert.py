"""Tests for expected-remaining-time estimation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ert import estimate_remaining_time
from repro.curves.predictor import CurvePrediction


def _prediction(samples, first_epoch=11, observed=(0.1, 0.2)):
    samples = np.asarray(samples, dtype=float)
    horizon = np.arange(first_epoch, first_epoch + samples.shape[1])
    return CurvePrediction(
        observed=np.asarray(observed), horizon=horizon, samples=samples
    )


def test_certain_achievement_next_epoch():
    # Every sample reaches 0.8 at the first future epoch.
    pred = _prediction([[0.85, 0.9], [0.82, 0.88]])
    est = estimate_remaining_time(pred, 0.8, epoch_duration=60.0, time_remaining=1e6)
    assert est.confidence == pytest.approx(1.0)
    assert est.expected_remaining_epochs == pytest.approx(1.0)
    assert est.expected_remaining_seconds == pytest.approx(60.0)


def test_pmf_spread_over_two_epochs():
    # Half the samples reach at epoch 1, the other half at epoch 2.
    pred = _prediction([[0.85, 0.9], [0.5, 0.85]])
    est = estimate_remaining_time(pred, 0.8, epoch_duration=10.0, time_remaining=1e6)
    assert est.confidence == pytest.approx(1.0)
    assert est.expected_remaining_epochs == pytest.approx(1.5)
    assert est.expected_remaining_seconds == pytest.approx(15.0)


def test_partial_confidence():
    pred = _prediction([[0.85], [0.5], [0.4], [0.81]])
    est = estimate_remaining_time(pred, 0.8, epoch_duration=10.0, time_remaining=1e6)
    assert est.confidence == pytest.approx(0.5)


def test_zero_confidence_sets_ert_to_remaining_time():
    pred = _prediction([[0.3, 0.35], [0.2, 0.25]])
    est = estimate_remaining_time(pred, 0.8, epoch_duration=10.0, time_remaining=500.0)
    assert est.confidence == 0.0
    assert est.expected_remaining_seconds == pytest.approx(500.0)


def test_horizon_limited_by_time_remaining():
    # 10 future epochs predicted but only 3 epochs of time left.
    samples = np.tile(np.linspace(0.5, 0.95, 10), (4, 1))
    pred = _prediction(samples)
    est = estimate_remaining_time(pred, 0.9, epoch_duration=10.0, time_remaining=35.0)
    assert est.horizon_epochs == 3
    # target 0.9 is reached only at epochs beyond the horizon
    assert est.confidence == 0.0


def test_no_time_remaining():
    pred = _prediction([[0.9]])
    est = estimate_remaining_time(pred, 0.8, epoch_duration=10.0, time_remaining=0.0)
    assert est.confidence == 0.0
    assert est.expected_remaining_seconds == 0.0
    assert est.horizon_epochs == 0


def test_sub_epoch_time_remaining():
    pred = _prediction([[0.9]])
    est = estimate_remaining_time(pred, 0.8, epoch_duration=10.0, time_remaining=5.0)
    assert est.horizon_epochs == 0
    assert est.confidence == 0.0
    assert est.expected_remaining_seconds == pytest.approx(5.0)


def test_invalid_epoch_duration():
    pred = _prediction([[0.9]])
    with pytest.raises(ValueError, match="epoch_duration"):
        estimate_remaining_time(pred, 0.8, epoch_duration=0.0, time_remaining=10.0)


def test_ert_capped_at_time_remaining():
    # Achievement only at the last of many epochs -> large raw ERT.
    n = 50
    samples = np.zeros((2, n))
    samples[:, -1] = 0.95
    pred = _prediction(samples)
    est = estimate_remaining_time(
        pred, 0.9, epoch_duration=10.0, time_remaining=200.0
    )
    assert est.expected_remaining_seconds <= 200.0


def test_observed_best_counts_as_achieved():
    """A job that already touched the target has confidence ~1."""
    pred = _prediction([[0.5], [0.4]], observed=(0.1, 0.85))
    est = estimate_remaining_time(pred, 0.8, epoch_duration=10.0, time_remaining=100.0)
    assert est.confidence == pytest.approx(1.0)
    assert est.expected_remaining_epochs == pytest.approx(1.0)


@given(
    target=st.floats(min_value=0.05, max_value=0.99),
    epoch_duration=st.floats(min_value=1.0, max_value=500.0),
    time_remaining=st.floats(min_value=1.0, max_value=1e6),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=60, deadline=None)
def test_estimate_invariants(target, epoch_duration, time_remaining, seed):
    """Property: 0 <= p <= 1 and 0 <= ERT <= time_remaining always."""
    rng = np.random.default_rng(seed)
    samples = np.clip(rng.random((8, 12)).cumsum(axis=1) / 6.0, 0, 1)
    pred = _prediction(samples)
    est = estimate_remaining_time(pred, target, epoch_duration, time_remaining)
    assert 0.0 <= est.confidence <= 1.0
    assert 0.0 <= est.expected_remaining_seconds <= time_remaining + 1e-9
    assert est.expected_remaining_epochs >= 0.0
