"""Registry completeness: every published name actually works.

The registry is the shared vocabulary of the CLI, the service, and the
sweep lab.  A name that appears in ``POLICIES`` / ``GENERATORS`` /
``WORKLOADS`` but cannot be constructed with defaults — or that the
StudySpec validator rejects — is a landmine for every one of those
surfaces, so this test constructs all of them and round-trips each
through StudySpec validation and serialization.
"""

from __future__ import annotations

import pytest

from repro import registry
from repro.generators.base import HyperparameterGenerator
from repro.lab.spec import StudySpec
from repro.policies.base import SchedulingPolicy
from repro.workloads.base import Workload


def test_every_workload_constructs_and_exposes_domain():
    for name in registry.WORKLOADS:
        workload = registry.build_workload(name)
        assert isinstance(workload, Workload)
        assert workload.domain.max_epochs > 0
        assert workload.space is not None


def test_every_policy_constructs_with_defaults():
    for name in registry.POLICIES:
        policy = registry.build_policy(name)
        assert isinstance(policy, SchedulingPolicy)
        # The SAP contract every scheduler touchpoint relies on.
        assert callable(policy.allocate_jobs)
        assert callable(policy.on_iteration_finish)
        assert callable(policy.application_stat)


@pytest.mark.parametrize("workload_name", sorted(registry.WORKLOADS))
def test_every_generator_constructs_and_mints(workload_name):
    workload = registry.build_workload(workload_name)
    for name in registry.GENERATORS:
        generator = registry.build_generator(
            name, workload, max_configs=2, gen_seed=0
        )
        assert isinstance(generator, HyperparameterGenerator)
        _, config = generator.create_job()
        assert isinstance(config, dict) and config


def test_every_name_round_trips_study_spec_validation():
    """One StudySpec naming everything validates and serializes."""
    spec = StudySpec(
        name="registry-completeness",
        policies=tuple(sorted(registry.POLICIES)),
        workloads=tuple(sorted(registry.WORKLOADS)),
        generators=tuple(sorted(registry.GENERATORS)),
        seeds=(0,),
        num_configs=4,
        baseline={"policy": sorted(registry.POLICIES)[0]},
        metric="time_to_target",
    )
    restored = StudySpec.from_dict(spec.to_dict())
    assert restored == spec
    # Every cell the spec expands to names constructible components.
    cells = spec.cells()
    assert len(cells) == (
        len(registry.POLICIES)
        * len(registry.WORKLOADS)
        * len(registry.GENERATORS)
    )
    for cell in cells:
        assert cell.policy in registry.POLICIES
        assert cell.workload in registry.WORKLOADS
        assert cell.generator in registry.GENERATORS


def test_unknown_names_are_rejected_with_choices():
    with pytest.raises(ValueError, match="choices"):
        registry.build_policy("nope")
    with pytest.raises(ValueError, match="choices"):
        registry.build_workload("nope")
    with pytest.raises(ValueError, match="choices"):
        registry.build_generator(
            "nope", registry.build_workload("cifar10"), max_configs=1
        )
