"""Unit tests for the POP policy's decision logic.

These drive the policy through a hand-built context (real Job/Resource
Managers, scripted predictions) so each decision rule is tested in
isolation; end-to-end behaviour is covered in tests/integration.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest

from repro.core.pop import POPPolicy
from repro.curves.predictor import CurvePrediction
from repro.framework.appstat_db import AppStatDB
from repro.framework.events import AppStat, Decision, IterationFinished
from repro.framework.job import JobState
from repro.framework.job_manager import JobManager
from repro.framework.policy_api import PolicyContext
from repro.framework.resource_manager import ResourceManager
from repro.workloads.base import DomainSpec

DOMAIN = DomainSpec(
    kind="supervised",
    metric_name="validation_accuracy",
    target=0.77,
    kill_threshold=0.15,
    random_performance=0.10,
    max_epochs=120,
    eval_boundary=10,
)


def prediction_with_level(level: float, n_future: int = 10) -> CurvePrediction:
    """A scripted flat prediction at ``level``."""
    return CurvePrediction(
        observed=np.array([0.1]),
        horizon=np.arange(2, 2 + n_future),
        samples=np.full((20, n_future), level),
    )


class Harness:
    """Minimal stand-in for the scheduler around a policy."""

    def __init__(self, num_machines=4, tmax=48 * 3600.0):
        self.jm = JobManager()
        self.rm = ResourceManager(num_machines)
        self.db = AppStatDB()
        self.now = 0.0
        self.predictions: Dict[str, CurvePrediction] = {}
        self.started = []
        self.ctx = PolicyContext(
            job_manager=self.jm,
            resource_manager=self.rm,
            appstat_db=self.db,
            domain=DOMAIN,
            tmax=tmax,
            target=0.77,
            now=lambda: self.now,
            start=self._start,
            predict=self._predict,
        )

    def _start(self, job_id, machine_id):
        job = self.jm.get(job_id)
        if job.state is JobState.PENDING:
            self.jm.start_job(job_id, machine_id)
        else:
            self.jm.resume_job(job_id, machine_id)
        self.started.append((job_id, machine_id))

    def _predict(self, job_id, n_future):
        try:
            return self.predictions[job_id]
        except KeyError:
            raise ValueError("no scripted prediction") from None

    def add_job(self, job_id, metrics=(), running_on=None):
        from repro.framework.job import Job

        job = Job(job_id=job_id, config={"x": 1})
        self.jm.add_job(job)
        if running_on is not None:
            self.jm.start_job(job_id, running_on)
            self.rm.reserve_idle_machine()
        for epoch, metric in enumerate(metrics, 1):
            job.record(
                AppStat(
                    job_id=job_id,
                    epoch=epoch,
                    metric=metric,
                    duration=60.0,
                    timestamp=epoch * 60.0,
                    machine_id=running_on or "machine-00",
                )
            )
        return job

    def event(self, job_id, epoch, metric=0.5):
        return IterationFinished(
            job_id=job_id,
            epoch=epoch,
            metric=metric,
            timestamp=self.now,
            machine_id="machine-00",
            job_finished=False,
        )


@pytest.fixture()
def harness():
    return Harness()


@pytest.fixture()
def policy(harness):
    pop = POPPolicy()
    pop.bind(harness.ctx)
    return pop


def test_non_learner_terminated_before_prediction(harness, policy):
    rng = np.random.default_rng(0)
    metrics = list(0.10 + 0.002 * rng.standard_normal(10))
    harness.add_job("j0", metrics, running_on="machine-00")
    decision = policy.on_iteration_finish(harness.event("j0", 10, 0.1))
    assert decision is Decision.TERMINATE


def test_off_boundary_continues_without_prediction(harness, policy):
    harness.add_job("j0", [0.2] * 7, running_on="machine-00")
    decision = policy.on_iteration_finish(harness.event("j0", 7))
    assert decision is Decision.CONTINUE
    job = harness.jm.get("j0")
    assert job.confidence is None


def test_boundary_stores_confidence(harness, policy):
    harness.add_job("j0", list(np.linspace(0.1, 0.4, 10)), running_on="machine-00")
    harness.predictions["j0"] = prediction_with_level(0.9)
    decision = policy.on_iteration_finish(harness.event("j0", 10))
    assert decision is Decision.CONTINUE
    job = harness.jm.get("j0")
    assert job.confidence == pytest.approx(1.0)
    assert job.promising


def test_confidence_kill_requires_two_predictions(harness, policy):
    harness.add_job("j0", list(np.linspace(0.1, 0.3, 10)), running_on="machine-00")
    harness.predictions["j0"] = prediction_with_level(0.2)  # never reaches 0.77
    first = policy.on_iteration_finish(harness.event("j0", 10))
    assert first is not Decision.TERMINATE
    job = harness.jm.get("j0")
    # extend history to next boundary
    for epoch in range(11, 21):
        job.record(
            AppStat("j0", epoch, 0.3, 60.0, epoch * 60.0, "machine-00")
        )
    second = policy.on_iteration_finish(harness.event("j0", 20))
    assert second is Decision.TERMINATE


def test_opportunistic_suspended_when_jobs_wait(harness, policy):
    harness.add_job("j0", list(np.linspace(0.1, 0.3, 10)), running_on="machine-00")
    harness.add_job("j1")  # idle pending job is waiting
    harness.predictions["j0"] = prediction_with_level(0.5)
    decision = policy.on_iteration_finish(harness.event("j0", 10))
    # conf 0 -> but only one prediction so no kill; opportunistic + a
    # waiting job -> suspend.
    assert decision is Decision.SUSPEND


def test_opportunistic_continues_when_queue_empty(harness, policy):
    harness.add_job("j0", list(np.linspace(0.1, 0.3, 10)), running_on="machine-00")
    harness.predictions["j0"] = prediction_with_level(0.5)
    decision = policy.on_iteration_finish(harness.event("j0", 10))
    assert decision is Decision.CONTINUE


def test_confidence_smoothing_blends(harness):
    pop = POPPolicy(confidence_smoothing=0.5)
    pop.bind(harness.ctx)
    job = harness.add_job(
        "j0", list(np.linspace(0.1, 0.4, 10)), running_on="machine-00"
    )
    harness.predictions["j0"] = prediction_with_level(0.9)  # conf 1.0
    pop.on_iteration_finish(harness.event("j0", 10))
    assert job.confidence == pytest.approx(1.0)
    for epoch in range(11, 21):
        job.record(AppStat("j0", epoch, 0.4, 60.0, epoch * 60.0, "machine-00"))
    harness.predictions["j0"] = prediction_with_level(0.5)  # conf 0.0
    pop.on_iteration_finish(harness.event("j0", 20))
    assert job.confidence == pytest.approx(0.5)


def test_promising_labelled_with_priority(harness, policy):
    job = harness.add_job(
        "j0", list(np.linspace(0.1, 0.4, 10)), running_on="machine-00"
    )
    harness.predictions["j0"] = prediction_with_level(0.9)
    policy.on_iteration_finish(harness.event("j0", 10))
    assert job.priority == pytest.approx(job.confidence)


def test_allocate_jobs_prefers_promising_pool(harness, policy):
    # Two suspended jobs: one promising (high conf), one not.
    j0 = harness.add_job("j0", [0.3] * 10, running_on="machine-00")
    j1 = harness.add_job("j1", [0.3] * 10, running_on="machine-01")
    harness.jm.suspend_job("j0")
    harness.rm.release_machine("machine-00")
    harness.jm.suspend_job("j1")
    harness.rm.release_machine("machine-01")
    j1.confidence = 0.9
    j1.promising = True
    j1.priority = 0.9
    policy.promising_slots = 1
    policy.allocate_jobs()
    # j1 (promising) starts first despite j0's earlier FIFO position.
    assert harness.started[0][0] == "j1"
    # Work conserving: j0 starts too since machines remain.
    assert ("j0", harness.started[1][1]) == harness.started[1]


def test_allocate_jobs_stops_when_no_machines(harness, policy):
    harness.add_job("j0")
    for _ in range(4):
        harness.rm.reserve_idle_machine()
    policy.allocate_jobs()
    assert harness.started == []


def test_constructor_validation():
    with pytest.raises(ValueError, match="grace_multiplier"):
        POPPolicy(grace_multiplier=0)
    with pytest.raises(ValueError, match="confidence_smoothing"):
        POPPolicy(confidence_smoothing=1.0)


def test_eval_boundary_defaults_to_domain(harness, policy):
    assert policy.eval_boundary == DOMAIN.eval_boundary
    assert policy.grace_epochs == 2 * DOMAIN.eval_boundary


def test_eval_boundary_override():
    pop = POPPolicy(eval_boundary=25)
    assert pop._eval_boundary == 25
