"""Tests for Promising/Opportunistic/Poor classification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classification import (
    CONFIDENCE_LOWER_BOUND,
    Category,
    classify,
    is_poor_by_domain,
)
from repro.workloads.base import DomainSpec


SL_DOMAIN = DomainSpec(
    kind="supervised",
    metric_name="validation_accuracy",
    target=0.77,
    kill_threshold=0.15,
    random_performance=0.10,
    max_epochs=120,
    eval_boundary=10,
)

RL_DOMAIN = DomainSpec(
    kind="reinforcement",
    metric_name="reward",
    target=200.0,
    kill_threshold=-100.0,
    random_performance=-200.0,
    max_epochs=200,
    eval_boundary=20,
    r_min=-500.0,
    r_max=300.0,
)


def _flat(level, n, seed=0):
    rng = np.random.default_rng(seed)
    return list(level + 0.003 * rng.standard_normal(n))


def _rising(start, stop, n):
    return list(np.linspace(start, stop, n))


# ------------------------------------------------------ is_poor_by_domain


def test_short_history_never_poor():
    assert not is_poor_by_domain(_flat(0.1, 3), SL_DOMAIN, grace_epochs=20)


def test_flat_non_learner_killed_at_flat_check():
    metrics = _flat(0.10, 10)
    assert is_poor_by_domain(metrics, SL_DOMAIN, grace_epochs=20)


def test_rising_slow_learner_survives_flat_check():
    # Below the kill threshold but clearly trending up.
    metrics = _rising(0.10, 0.145, 12)
    assert not is_poor_by_domain(metrics, SL_DOMAIN, grace_epochs=20)


def test_slow_learner_killed_after_full_grace():
    metrics = _rising(0.10, 0.145, 20)
    assert is_poor_by_domain(metrics, SL_DOMAIN, grace_epochs=20)


def test_escaped_threshold_never_poor():
    metrics = _rising(0.10, 0.30, 25)
    assert not is_poor_by_domain(metrics, SL_DOMAIN, grace_epochs=20)


def test_past_peak_uses_best_so_far():
    # Touched 0.2 once -> escaped for good, even if it collapses after.
    metrics = _rising(0.10, 0.20, 10) + _flat(0.08, 15, seed=1)
    assert not is_poor_by_domain(metrics, SL_DOMAIN, grace_epochs=20)


def test_rl_crashed_job_poor():
    metrics = _flat(-150.0, 40, seed=2)
    assert is_poor_by_domain(metrics, RL_DOMAIN, grace_epochs=40)


def test_rl_rising_learner_not_poor():
    metrics = _rising(-200.0, -110.0, 30)
    assert not is_poor_by_domain(metrics, RL_DOMAIN, grace_epochs=40)


def test_grace_epochs_validation():
    with pytest.raises(ValueError, match="grace_epochs"):
        is_poor_by_domain([0.1], SL_DOMAIN, grace_epochs=0)


def test_custom_flat_check_epochs():
    metrics = _flat(0.10, 5)
    assert is_poor_by_domain(
        metrics, SL_DOMAIN, grace_epochs=20, flat_check_epochs=5
    )
    assert not is_poor_by_domain(
        metrics, SL_DOMAIN, grace_epochs=20, flat_check_epochs=6
    )


# ---------------------------------------------------------------- classify


def test_classify_poor_by_domain_precedes_confidence():
    metrics = _flat(0.10, 25)
    assert (
        classify(0.99, 0.5, metrics, SL_DOMAIN, grace_epochs=20)
        is Category.POOR
    )


def test_classify_unpredicted_is_opportunistic():
    metrics = _rising(0.1, 0.4, 8)
    assert (
        classify(None, 0.5, metrics, SL_DOMAIN, grace_epochs=20)
        is Category.OPPORTUNISTIC
    )


def test_classify_low_confidence_is_poor():
    metrics = _rising(0.1, 0.4, 15)
    assert (
        classify(0.01, 0.5, metrics, SL_DOMAIN, grace_epochs=20)
        is Category.POOR
    )


def test_classify_confidence_at_threshold_is_promising():
    metrics = _rising(0.1, 0.5, 15)
    assert (
        classify(0.5, 0.5, metrics, SL_DOMAIN, grace_epochs=20)
        is Category.PROMISING
    )


def test_classify_between_bound_and_threshold_is_opportunistic():
    metrics = _rising(0.1, 0.5, 15)
    assert (
        classify(0.3, 0.5, metrics, SL_DOMAIN, grace_epochs=20)
        is Category.OPPORTUNISTIC
    )


def test_classify_custom_lower_bound():
    metrics = _rising(0.1, 0.5, 15)
    assert (
        classify(
            0.3, 0.5, metrics, SL_DOMAIN, grace_epochs=20,
            confidence_lower_bound=0.4,
        )
        is Category.POOR
    )


def test_default_lower_bound_is_paper_value():
    assert CONFIDENCE_LOWER_BOUND == 0.05
