"""Unit tests for budget-aware POP (spend ledger, clamps, priorities)."""

from __future__ import annotations

import pytest

from repro import registry
from repro.core.pop_budget import POPBudgetPolicy
from repro.framework.events import AppStat

from tests.core.test_pop import Harness, prediction_with_level


def make_stat(duration, epoch=1, job_id="j0"):
    return AppStat(
        job_id=job_id,
        epoch=epoch,
        metric=0.5,
        duration=duration,
        timestamp=epoch * duration,
        machine_id="machine-00",
    )


@pytest.fixture()
def harness():
    return Harness()


def bound_policy(harness, budget=None, **kwargs):
    policy = POPBudgetPolicy(budget_slot_hours=budget, **kwargs)
    policy.bind(harness.ctx)
    return policy


def test_registered_and_zero_arg_constructible():
    policy = registry.build_policy("pop-budget")
    assert isinstance(policy, POPBudgetPolicy)
    assert policy.name == "pop-budget"


def test_constructor_validation():
    with pytest.raises(ValueError, match="budget_slot_hours"):
        POPBudgetPolicy(budget_slot_hours=0.0)
    with pytest.raises(ValueError, match="slot_rate"):
        POPBudgetPolicy(slot_rate=0.0)


def test_configure_budget_overrides_and_validates():
    policy = POPBudgetPolicy()
    policy.configure_budget(12.0)
    assert policy.budget_slot_hours == 12.0
    policy.configure_budget(None)  # None keeps the current budget
    assert policy.budget_slot_hours == 12.0
    with pytest.raises(ValueError, match="budget_slot_hours"):
        policy.configure_budget(-1.0)


def test_default_budget_is_fraction_of_full_cluster_cost(harness):
    policy = bound_policy(harness)
    # 4 machines x 48 h, halved by the default budget_fraction.
    assert policy.budget_slot_hours == pytest.approx(0.5 * 4 * 48.0)


def test_application_stat_charges_epoch_durations(harness):
    policy = bound_policy(harness, budget=100.0)
    policy.application_stat(make_stat(3600.0))
    policy.application_stat(make_stat(1800.0, epoch=2))
    assert policy.spent_dollars == pytest.approx(1.5)
    assert policy.remaining_dollars == pytest.approx(98.5)


def test_exhaustion_stops_experiment_once(harness):
    stops = []
    harness.ctx.stop_experiment = stops.append
    policy = bound_policy(harness, budget=1.0)
    policy.application_stat(make_stat(1800.0))
    assert stops == []
    policy.application_stat(make_stat(1800.0, epoch=2))
    assert stops == ["budget_exhausted"]
    policy.application_stat(make_stat(3600.0, epoch=3))
    assert stops == ["budget_exhausted"]  # one-shot


def test_allocatable_slots_clamped_to_affordable(harness):
    policy = bound_policy(harness, budget=10.0)
    # 48 h left, $10 purse: cannot afford even one slot — but the
    # clamp floors at 1 so the best config keeps training.
    assert policy._allocatable_slots() == 1
    # 2 h left, $10 purse: 5 affordable, capped by the 4 in service.
    harness.now = 46 * 3600.0
    assert policy._allocatable_slots() == 4
    # Past Tmax the time limit binds, not the money.
    harness.now = 49 * 3600.0
    assert policy._allocatable_slots() == 4


def test_priority_is_confidence_per_expected_dollar(harness):
    policy = bound_policy(harness, budget=100.0)
    cheap = harness.add_job("cheap", [0.3], running_on="machine-00")
    costly = harness.add_job("costly", [0.3], running_on="machine-01")
    cheap.confidence = 0.8
    cheap.expected_remaining_time = 3600.0  # $1 to finish
    costly.confidence = 0.8
    costly.expected_remaining_time = 7200.0  # $2 to finish
    assert policy._priority_for(cheap) > policy._priority_for(costly)
    # Without an estimate the raw confidence stands.
    costly.expected_remaining_time = None
    assert policy._priority_for(costly) == pytest.approx(0.8)


def test_reclassification_labels_by_value_per_dollar(harness):
    policy = bound_policy(harness, budget=1000.0)
    cheap = harness.add_job("cheap", [0.3] * 10, running_on="machine-00")
    costly = harness.add_job("costly", [0.3] * 10, running_on="machine-01")
    harness.predictions["cheap"] = prediction_with_level(0.9)
    harness.predictions["costly"] = prediction_with_level(0.9)
    policy._update_estimate(cheap)
    policy._update_estimate(costly)
    cheap.expected_remaining_time = 3600.0
    costly.expected_remaining_time = 7200.0
    policy._reclassify_all()
    assert cheap.promising and costly.promising
    assert cheap.priority > costly.priority


def test_budget_gauges_track_spend(harness):
    from repro.observability import Recorder

    harness.ctx.recorder = Recorder()
    policy = bound_policy(harness, budget=10.0)
    policy.application_stat(make_stat(3600.0))
    metrics = harness.ctx.recorder.metrics
    assert metrics.get("pop_budget_spent_dollars").value() == pytest.approx(1.0)
    assert metrics.get("pop_budget_remaining_dollars").value() == (
        pytest.approx(9.0)
    )
