"""Paired analysis and report rendering on fabricated cell stores."""

from __future__ import annotations

import json

import pytest

from repro.lab import (
    CellStore,
    MissingCellsError,
    StudySpec,
    analyze,
    render_json,
    render_markdown,
)
from repro.lab.analysis import cell_metric_value


def make_spec(**overrides) -> StudySpec:
    base = dict(
        name="analysis-study",
        policies=("pop", "bandit", "default"),
        workloads=("cifar10",),
        seeds=(0, 1, 2),
        baseline={"policy": "pop"},
    )
    base.update(overrides)
    return StudySpec(**base)


def populate(store: CellStore, spec: StudySpec, time_for) -> None:
    """Fill the store with fabricated results; ``time_for(cell) -> s``."""
    store.save_spec(spec)
    for cell in spec.cells():
        seconds = time_for(cell)
        store.save_cell(
            cell.key(),
            {
                "key": cell.key(),
                "label": cell.label(),
                "cell": cell.resolved(),
                "result": {
                    "reached_target": True,
                    "time_to_target": seconds,
                    "finished_at": seconds,
                    "best_metric": 1.0 / seconds,
                },
                "wall_seconds": 0.01,
            },
        )


#: pop twice as fast as bandit, 4x default, on every seed.
BASE_TIMES = {"pop": 600.0, "bandit": 1200.0, "default": 2400.0}


def fabricated_time(cell) -> float:
    return BASE_TIMES[cell.policy] + 10.0 * cell.seed


def test_missing_cells_error_names_labels(tmp_path):
    spec = make_spec()
    store = CellStore(tmp_path)
    store.save_spec(spec)
    with pytest.raises(MissingCellsError, match=r"missing 9/9.*cifar10/pop"):
        analyze(spec, store)


def test_paired_speedups_and_winner(tmp_path):
    spec = make_spec()
    store = CellStore(tmp_path)
    populate(store, spec, fabricated_time)
    analysis = analyze(spec, store)

    assert analysis.overall_winner == "pop"
    (context,) = analysis.contexts
    assert context.winner == "pop"
    rows = {row.level: row for row in context.levels}
    assert rows["pop"].is_baseline
    assert rows["pop"].baseline_speedup is None
    # pop is ~2x faster than bandit and ~4x faster than default
    assert rows["bandit"].baseline_speedup[0] == pytest.approx(1.98, abs=0.02)
    assert rows["default"].baseline_speedup[0] == pytest.approx(3.95, abs=0.05)
    for level in ("bandit", "default"):
        point, low, high = rows[level].baseline_speedup
        assert low <= point <= high
        assert rows[level].wins == 0 and rows[level].losses == 3
    # strict-win matrix: pop beats both on all three replicates
    assert context.win_matrix["pop"] == {"pop": 0, "bandit": 3, "default": 3}
    assert context.win_matrix["bandit"]["default"] == 3


def test_higher_is_better_uses_delta(tmp_path):
    spec = make_spec(metric="best_metric")
    store = CellStore(tmp_path)
    populate(store, spec, fabricated_time)
    analysis = analyze(spec, store)
    rows = {row.level: row for row in analysis.contexts[0].levels}
    assert rows["bandit"].baseline_speedup is None
    point, low, high = rows["bandit"].baseline_delta
    assert point < 0  # bandit's best_metric is below pop's
    assert low <= point <= high
    assert analysis.overall_winner == "pop"


def test_multi_context_overall_winner(tmp_path):
    spec = make_spec(machines=(2, 4))

    def time_for(cell):
        # default wins at 2 machines, pop everywhere else
        if cell.machines == 2 and cell.policy == "default":
            return 100.0 + cell.seed
        return fabricated_time(cell)

    store = CellStore(tmp_path)
    populate(store, spec, time_for)
    analysis = analyze(spec, store)
    winners = {
        context.context["machines"]: context.winner
        for context in analysis.contexts
    }
    assert winners == {2: "default", 4: "pop"}
    # 1 context each -> tie broken on direction-aware aggregate mean
    assert analysis.overall_winner == "pop"


def test_analysis_is_deterministic(tmp_path):
    spec = make_spec()
    store = CellStore(tmp_path)
    populate(store, spec, fabricated_time)
    first = render_markdown(analyze(spec, store))
    second = render_markdown(analyze(spec, store))
    assert first == second
    assert json.dumps(render_json(analyze(spec, store)), sort_keys=True) == (
        json.dumps(render_json(analyze(spec, store)), sort_keys=True)
    )


def test_markdown_report_shape(tmp_path):
    spec = make_spec()
    store = CellStore(tmp_path)
    populate(store, spec, fabricated_time)
    markdown = render_markdown(analyze(spec, store))
    assert markdown.startswith("# Study report: analysis-study")
    assert "baseline adv × (95% CI)" in markdown
    assert "Win matrix" in markdown
    assert "Winner: **pop** (1/1 context)" in markdown
    # speedups render in the 1.6x [1.3, 1.9] shape
    assert "x [" in markdown


def test_cell_metric_value_conventions():
    reached = {"reached_target": True, "time_to_target": 30.0, "finished_at": 99.0}
    unreached = {"reached_target": False, "time_to_target": None, "finished_at": 99.0}
    assert cell_metric_value("time_to_target", reached) == 30.0
    assert cell_metric_value("time_to_target", unreached) == 99.0
    assert cell_metric_value("best_metric", {"best_metric": 0.5}) == 0.5
    with pytest.raises(ValueError, match="best_metric"):
        cell_metric_value("best_metric", {"best_metric": None})
    with pytest.raises(ValueError, match="unknown metric"):
        cell_metric_value("wall", reached)
