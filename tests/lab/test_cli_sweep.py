"""The ``repro sweep`` CLI verb (run / resume / report, local paths)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

FAST_SPEC = {
    "name": "cli-study",
    "policies": ["default", "bandit"],
    "workloads": ["mlp"],
    "machines": [2],
    "seeds": [0],
    "num_configs": 3,
    "tmax_hours": 1.0,
    "stop_on_target": False,
    "baseline": {"policy": "default"},
    "metric": "best_metric",
}


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "study.json"
    path.write_text(json.dumps(FAST_SPEC))
    return path


def test_sweep_run_from_spec_file(tmp_path, spec_file, capsys):
    out_dir = tmp_path / "out"
    code = main(
        [
            "sweep", "run",
            "--spec", str(spec_file),
            "--out", str(out_dir),
            "--max-workers", "1",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "# Study report: cli-study" in captured.out
    assert "Winner: **" in captured.out
    assert "cells 2/2" in captured.err
    assert (out_dir / "report.md").exists()
    assert (out_dir / "report.json").exists()
    report = json.loads((out_dir / "report.json").read_text())
    assert report["study"] == "cli-study"
    assert report["overall_winner"]


def test_sweep_run_resume_and_report_are_identical(tmp_path, spec_file, capsys):
    out_dir = tmp_path / "out"
    argv = [
        "sweep", "run", "--spec", str(spec_file),
        "--out", str(out_dir), "--max-workers", "1",
    ]
    assert main(argv) == 0
    first = (out_dir / "report.md").read_bytes()
    capsys.readouterr()

    # rerunning the same directory skips every cell
    assert main(argv) == 0
    assert "skipped 2" in capsys.readouterr().err
    assert (out_dir / "report.md").read_bytes() == first

    # `resume` needs no spec at all; `report` just re-renders
    assert main(["sweep", "resume", "--out", str(out_dir)]) == 0
    assert main(["sweep", "report", "--out", str(out_dir)]) == 0
    assert "# Study report: cli-study" in capsys.readouterr().out
    assert (out_dir / "report.md").read_bytes() == first


def test_sweep_seeds_override(tmp_path, spec_file, capsys):
    out_dir = tmp_path / "out"
    code = main(
        [
            "sweep", "run",
            "--spec", str(spec_file),
            "--out", str(out_dir),
            "--seeds", "0,1",
            "--max-workers", "1",
        ]
    )
    assert code == 0
    assert "cells 4/4" in capsys.readouterr().err


def test_sweep_run_emits_observability(tmp_path, spec_file, capsys):
    out_dir = tmp_path / "out"
    events = tmp_path / "events.jsonl"
    metrics = tmp_path / "metrics.txt"
    code = main(
        [
            "sweep", "run",
            "--spec", str(spec_file),
            "--out", str(out_dir),
            "--max-workers", "1",
            "--emit-events", str(events),
            "--metrics-out", str(metrics),
        ]
    )
    assert code == 0
    kinds = [json.loads(line)["kind"] for line in events.read_text().splitlines()]
    assert kinds[0] == "lab_study_started"
    assert kinds.count("lab_cell_completed") == 2
    assert "lab_cells_done 2" in metrics.read_text()


def test_sweep_requires_exactly_one_source(tmp_path, spec_file, capsys):
    code = main(["sweep", "run", "--out", str(tmp_path / "x")])
    assert code == 3
    assert "exactly one of --study or --spec" in capsys.readouterr().err
    code = main(
        [
            "sweep", "run",
            "--study", "sweep-smoke",
            "--spec", str(spec_file),
            "--out", str(tmp_path / "x"),
        ]
    )
    assert code == 3


def test_sweep_unknown_study_errors(tmp_path, capsys):
    code = main(
        ["sweep", "run", "--study", "nope", "--out", str(tmp_path / "x")]
    )
    assert code == 3
    assert "unknown study" in capsys.readouterr().err


def test_sweep_bad_seeds_errors(tmp_path, spec_file, capsys):
    code = main(
        [
            "sweep", "run",
            "--spec", str(spec_file),
            "--out", str(tmp_path / "x"),
            "--seeds", "0,two",
        ]
    )
    assert code == 3
    assert "comma-separated integers" in capsys.readouterr().err


def test_sweep_report_on_incomplete_store_errors(tmp_path, spec_file, capsys):
    from repro.lab import CellStore, StudySpec

    out_dir = tmp_path / "out"
    CellStore(out_dir).save_spec(StudySpec.from_dict(FAST_SPEC))
    code = main(["sweep", "report", "--out", str(out_dir)])
    assert code == 3
    assert "missing" in capsys.readouterr().err


def test_sweep_resume_on_non_study_dir_errors(tmp_path, capsys):
    code = main(["sweep", "resume", "--out", str(tmp_path / "empty")])
    assert code == 3
    assert "not a study directory" in capsys.readouterr().err
