"""StudySpec validation, grid expansion, and cell-key stability."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.lab import FIXED_GENERATOR, Cell, StudySpec


def make_spec(**overrides) -> StudySpec:
    base = dict(
        name="test-study",
        policies=("pop", "default"),
        workloads=("cifar10",),
        seeds=(0, 1),
        baseline={"policy": "pop"},
    )
    base.update(overrides)
    return StudySpec(**base)


# ------------------------------------------------------------- validation


def test_unknown_policy_lists_choices():
    with pytest.raises(ValueError, match=r"unknown policy 'sjf'.*choices"):
        make_spec(policies=("pop", "sjf"))


def test_unknown_workload_lists_choices():
    with pytest.raises(ValueError, match=r"unknown workload 'imagenet'"):
        make_spec(workloads=("imagenet",))


def test_unknown_generator_lists_fixed_pseudo_generator():
    with pytest.raises(ValueError, match=r"unknown generator 'smac'.*fixed"):
        make_spec(generators=("smac",))


def test_empty_seeds_rejected():
    with pytest.raises(ValueError, match="seeds must be non-empty"):
        make_spec(seeds=())


def test_non_integer_seeds_rejected():
    with pytest.raises(ValueError, match="seeds must be integers"):
        make_spec(seeds=(0, "one"))


def test_baseline_not_in_grid_rejected():
    with pytest.raises(ValueError, match="not in the study grid"):
        make_spec(baseline={"policy": "bandit"})


def test_baseline_must_match_compare_axis():
    with pytest.raises(ValueError, match="exactly the compare axis"):
        make_spec(compare_axis="workload", baseline={"policy": "pop"})


def test_duplicate_levels_rejected():
    with pytest.raises(ValueError, match="duplicate levels in policies"):
        make_spec(policies=("pop", "pop"))


def test_bad_compare_axis_rejected():
    with pytest.raises(ValueError, match="compare_axis"):
        make_spec(compare_axis="seed")


def test_bad_metric_rejected():
    with pytest.raises(ValueError, match="metric"):
        make_spec(metric="wall_clock")


def test_config_orders_require_fixed_generator():
    with pytest.raises(ValueError, match="fixed configuration set"):
        make_spec(generators=("random",), config_orders=(0, 1))


def test_invalid_scalar_knobs_rejected():
    with pytest.raises(ValueError, match="num_configs"):
        make_spec(num_configs=0)
    with pytest.raises(ValueError, match="tmax_hours"):
        make_spec(tmax_hours=0.0)
    with pytest.raises(ValueError, match="machines"):
        make_spec(machines=(0,))
    with pytest.raises(ValueError, match="predict_workers"):
        make_spec(predict_workers=0)


# -------------------------------------------------------------- expansion


def test_cells_cross_product_and_determinism():
    spec = make_spec(seeds=(0, 1, 2), machines=(2, 4))
    cells = spec.cells()
    assert len(cells) == 2 * 3 * 2  # policies x seeds x machines
    assert [c.label() for c in cells] == [c.label() for c in spec.cells()]
    # every combination appears exactly once
    combos = {(c.policy, c.seed, c.machines) for c in cells}
    assert len(combos) == len(cells)


def test_replicate_count():
    assert make_spec(seeds=(0, 1), config_orders=(0, 1, 2)).replicate_count() == 6


# ------------------------------------------------------------------ JSON


def test_json_round_trip(tmp_path):
    spec = make_spec(machines=(2, None), num_configs=7)
    payload = spec.to_dict()
    assert json.dumps(payload)  # serialisable
    assert StudySpec.from_dict(payload) == spec
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(payload))
    assert StudySpec.from_json_file(path) == spec


def test_from_dict_rejects_unknown_fields():
    payload = make_spec().to_dict()
    payload["paralellism"] = 4
    with pytest.raises(ValueError, match="unknown StudySpec fields: paralellism"):
        StudySpec.from_dict(payload)


def test_from_json_file_rejects_non_object(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("[1, 2]")
    with pytest.raises(ValueError, match="JSON object"):
        StudySpec.from_json_file(path)


def test_with_overrides_revalidates():
    spec = make_spec()
    assert spec.with_overrides(seeds=(5,)).seeds == (5,)
    with pytest.raises(ValueError):
        spec.with_overrides(policies=("nope",))


# ------------------------------------------------------------- cell keys


def test_cell_key_pins_defaults():
    """An explicit default and a None default are the *same* cell."""
    explicit = make_spec(machines=(4,)).cells()[0]
    defaulted = make_spec(machines=(None,)).cells()[0]
    assert explicit.resolved() == defaulted.resolved()
    assert explicit.key() == defaulted.key()


def test_cell_key_distinguishes_every_field():
    base = make_spec().cells()[0]
    assert base.key() != make_spec(seeds=(7, 1)).cells()[0].key()
    assert base.key() != make_spec(num_configs=99).cells()[0].key()
    assert base.key() != make_spec(tmax_hours=1.0).cells()[0].key()


def test_cell_key_stable_across_processes():
    """The content address must not depend on interpreter state
    (dict order, hash randomisation): a fresh process with a different
    PYTHONHASHSEED computes the identical key."""
    spec = make_spec()
    keys = [cell.key() for cell in spec.cells()]
    script = (
        "from repro.lab import StudySpec\n"
        f"spec = StudySpec.from_dict({spec.to_dict()!r})\n"
        "print('\\n'.join(cell.key() for cell in spec.cells()))\n"
    )
    for hashseed in ("0", "4242"):
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={
                **__import__("os").environ,
                "PYTHONHASHSEED": hashseed,
            },
        )
        assert out.stdout.split() == keys


def test_cell_label_mentions_distinguishing_parts():
    cell = Cell(
        study="s",
        workload="cifar10",
        policy="pop",
        generator=FIXED_GENERATOR,
        seed=3,
        machines=8,
        config_order=5,
        num_configs=10,
        gen_seed=None,
        target=None,
        tmax_hours=1.0,
        stop_on_target=True,
        predict_workers=1,
        predict_cache_size=0,
    )
    assert cell.label() == "cifar10/pop/8m/s3/o5"
    assert "random" in cell.__class__(**{**cell.__dict__, "generator": "random"}).label()
