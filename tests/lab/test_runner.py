"""StudyRunner: skip/resume, fan-out, metering, and failure paths."""

from __future__ import annotations

import pytest

from repro.lab import CellStore, StudyRunner, StudySpec, run_study
from repro.lab import runner as runner_module
from repro.lab.runner import CellError, execute_cell
from repro.observability import Recorder


def fast_spec(**overrides) -> StudySpec:
    """A real-execution study that completes in ~1 s total: the MLP
    workload constructs instantly (no calibration sampling)."""
    base = dict(
        name="runner-study",
        policies=("default", "bandit"),
        workloads=("mlp",),
        machines=(2,),
        seeds=(0,),
        num_configs=3,
        tmax_hours=1.0,
        stop_on_target=False,
        baseline={"policy": "default"},
        metric="best_metric",
    )
    base.update(overrides)
    return StudySpec(**base)


def fake_execute(payload):
    """Fabricated stand-in keyed like the real one (inline path only)."""
    from repro.lab.spec import Cell

    cell = Cell(**payload)
    return {
        "key": cell.key(),
        "label": cell.label(),
        "cell": cell.resolved(),
        "result": {
            "reached_target": True,
            "time_to_target": 100.0 + 10.0 * len(cell.policy),
            "finished_at": 500.0,
            "best_metric": 0.5 + 0.01 * cell.seed,
        },
        "wall_seconds": 0.01,
    }


@pytest.fixture()
def patched_execute(monkeypatch):
    monkeypatch.setattr(runner_module, "execute_cell", fake_execute)


def test_run_executes_all_cells_and_meters(tmp_path, patched_execute):
    spec = fast_spec(seeds=(0, 1))
    store = CellStore(tmp_path)
    recorder = Recorder()
    seen = []
    runner = StudyRunner(spec, store, recorder=recorder, max_workers=1)
    progress = runner.run(on_cell=lambda p: seen.append((p.executed, p.skipped)))

    assert (progress.total, progress.executed, progress.skipped) == (4, 4, 0)
    assert store.completed_keys() == {cell.key() for cell in spec.cells()}
    assert recorder.metrics.get("lab_cells_done").total == 4
    assert recorder.metrics.get("lab_cells_skipped").total == 0
    assert len(seen) == 4 and seen[-1] == (4, 0)
    kinds = [record.kind for record in recorder.audit.records]
    assert kinds[0] == "lab_study_started"
    assert kinds.count("lab_cell_completed") == 4
    assert kinds[-1] == "lab_study_finished"


def test_second_run_skips_everything(tmp_path, patched_execute):
    spec = fast_spec()
    store = CellStore(tmp_path)
    StudyRunner(spec, store, max_workers=1).run()
    stamps = {key: store.mtime_ns(key) for key in store.completed_keys()}

    recorder = Recorder()
    progress = StudyRunner(spec, store, recorder=recorder, max_workers=1).run()
    assert (progress.executed, progress.skipped) == (0, 2)
    assert recorder.metrics.get("lab_cells_skipped").total == 2
    skipped = recorder.audit.query(kind="lab_cell_skipped")
    assert {record.data["key"] for record in skipped} == set(stamps)
    # resume evidence: the archived cells were not rewritten
    assert {key: store.mtime_ns(key) for key in stamps} == stamps


def test_partial_store_runs_only_missing(tmp_path, patched_execute):
    spec = fast_spec(seeds=(0, 1))
    cells = spec.cells()
    store = CellStore(tmp_path)
    store.save_cell(cells[0].key(), fake_execute(cells[0].__dict__))
    progress = StudyRunner(spec, store, max_workers=1).run()
    assert (progress.executed, progress.skipped) == (3, 1)


def test_cell_failure_wraps_label(tmp_path, monkeypatch):
    def boom(payload):
        raise RuntimeError("synthetic failure")

    monkeypatch.setattr(runner_module, "execute_cell", boom)
    spec = fast_spec()
    with pytest.raises(CellError, match=r"mlp/default/2m/s0.*synthetic"):
        StudyRunner(spec, CellStore(tmp_path), max_workers=1).run()


def test_max_workers_validation(tmp_path):
    with pytest.raises(ValueError, match="max_workers"):
        StudyRunner(fast_spec(), CellStore(tmp_path), max_workers=0)


def test_effective_workers_auto_caps(tmp_path):
    runner = StudyRunner(fast_spec(), CellStore(tmp_path))
    assert runner._effective_workers(1) == 1
    assert 1 <= runner._effective_workers(100) <= 8


def test_execute_cell_real_and_deterministic():
    (cell, *_) = fast_spec().cells()
    from dataclasses import asdict

    first = execute_cell(asdict(cell))
    second = execute_cell(asdict(cell))
    assert first["key"] == cell.key()
    assert first["result"]["best_metric"] == second["result"]["best_metric"]
    assert first["result"]["epochs_trained"] == second["result"]["epochs_trained"]


def test_run_study_end_to_end_pooled(tmp_path):
    """The one-call helper with a real process pool: report written,
    resumable, and byte-identical when re-rendered."""
    spec = fast_spec(seeds=(0, 1))
    out = tmp_path / "study"
    markdown = run_study(spec, out, max_workers=2)
    store = CellStore(out)
    assert store.report_md_path.read_text() == markdown
    assert "Winner: **" in markdown
    # rerun: everything skipped, identical report
    assert run_study(spec, out, max_workers=2) == markdown


class TestCellTelemetry:
    def test_execute_cell_returns_digest(self):
        spec = fast_spec()
        cell = spec.cells()[0]
        from dataclasses import asdict

        payload = execute_cell(asdict(cell))
        telemetry = payload["telemetry"]
        assert telemetry["wall_seconds"] == payload["wall_seconds"]
        assert telemetry["cpu_seconds"] > 0.0
        assert telemetry["epochs"] > 0
        # The sim path with predict_workers=1 runs the inline
        # predictor: no cache, so the rate is None, not 0/0 noise.
        assert telemetry["prediction_cache_hit_rate"] is None or (
            0.0 <= telemetry["prediction_cache_hit_rate"] <= 1.0
        )

    def test_digest_persisted_in_cell_record_and_journal(self, tmp_path):
        spec = fast_spec(policies=("default",))
        store = CellStore(tmp_path)
        runner = StudyRunner(spec, store, recorder=Recorder(), max_workers=1)
        runner.run()
        (key,) = store.completed_keys()
        record = store.load_cell(key)
        assert "telemetry" in record
        assert record["telemetry"]["cpu_seconds"] > 0.0
        (entry,) = store.journal()
        assert entry["cpu_seconds"] == record["telemetry"]["cpu_seconds"]
        assert "cache_hit_rate" in entry
        # Parent-side metering saw the child's CPU time.
        histogram = runner.recorder.metrics.get("lab_cell_cpu_seconds")
        assert histogram.count() == 1

    def test_completed_audit_carries_digest(self, tmp_path):
        spec = fast_spec(policies=("default",))
        recorder = Recorder()
        run_study(spec, tmp_path, recorder=recorder, max_workers=1)
        (record,) = [
            r for r in recorder.audit.records
            if r.kind == "lab_cell_completed"
        ]
        assert record.data["cpu_seconds"] > 0.0
        assert "cache_hit_rate" in record.data

    def test_fake_payload_without_telemetry_tolerated(
        self, tmp_path, patched_execute
    ):
        # Old payload shape (pre-digest): runner must not crash.
        spec = fast_spec(policies=("default",))
        store = CellStore(tmp_path)
        runner = StudyRunner(spec, store, recorder=Recorder(), max_workers=1)
        runner.run()
        (entry,) = store.journal()
        assert entry["cpu_seconds"] is None
