"""Sweep-lab tests."""
