"""learned-vs-pop: the gated learning claim, on real study cells.

The acceptance gate for the learned-scheduling subsystem: on the
study's held-out evaluation seeds the frozen pretrained policy must
beat its untrained twin (identical architecture and plumbing, random
weights) with a paired-bootstrap speedup CI excluding 1.0.  Beating
the hand-tuned SAPs is reported by the full study but deliberately not
gated — see docs/learned.md.
"""

from __future__ import annotations

import os

import pytest

from repro.lab import CellStore, StudyRunner, analyze, render_markdown
from repro.lab.studies import builtin_study
from repro.learn.artifact import ARTIFACT_ENV_VAR
from repro.learn.trainer import TrainerConfig


@pytest.fixture(autouse=True)
def _no_artifact_override(monkeypatch):
    monkeypatch.delenv(ARTIFACT_ENV_VAR, raising=False)


def test_study_seeds_are_held_out():
    """Evaluation contexts must be disjoint from the training pool."""
    spec = builtin_study("learned-vs-pop")
    trainer = TrainerConfig()
    train_gen_seeds = {
        trainer.gen_seed_base + i for i in range(trainer.seed_pool)
    }
    # per-seed mode: cell generator seed = study gen_seed + replicate.
    eval_gen_seeds = {spec.gen_seed + seed for seed in spec.seeds}
    assert len(spec.seeds) >= 3
    assert eval_gen_seeds.isdisjoint(train_gen_seeds)


def test_learned_beats_random_init_with_ci(tmp_path):
    """The gate: trained weights beat random-init weights, CI > 1."""
    spec = builtin_study("learned-vs-pop").with_overrides(
        name="learned-gate",
        policies=("learned", "learned-random"),
        baseline={"policy": "learned"},
    )
    store = CellStore(tmp_path)
    store.save_spec(spec)
    StudyRunner(spec, store, max_workers=1).run()
    analysis = analyze(spec, store)

    (context,) = analysis.contexts
    rows = {row.level: row for row in context.levels}
    assert rows["learned"].is_baseline
    # Lower-is-better semantics: a row's baseline_speedup point is
    # row_mean / baseline_mean — how much the baseline (learned)
    # beats this row (learned-random).
    point, low, high = rows["learned-random"].baseline_speedup
    assert low <= point <= high
    assert low > 1.0, (
        f"trained policy does not beat random init: "
        f"{point:.3f} [{low:.3f}, {high:.3f}]"
    )
    assert analysis.overall_winner == "learned"


def test_report_quotes_learned_vs_pop_ci(tmp_path):
    """The reported (ungated) comparison: learned vs POP with a paired
    bootstrap CI, on >= 3 held-out seeds, rendered in the report."""
    spec = builtin_study("learned-vs-pop").with_overrides(
        name="learned-vs-pop-smoke",
        policies=("pop", "learned"),
        seeds=(1, 2, 4),
    )
    store = CellStore(tmp_path)
    store.save_spec(spec)
    StudyRunner(spec, store, max_workers=1).run()
    analysis = analyze(spec, store)

    (context,) = analysis.contexts
    rows = {row.level: row for row in context.levels}
    assert rows["pop"].is_baseline
    point, low, high = rows["learned"].baseline_speedup
    assert low <= point <= high
    report = render_markdown(analysis)
    assert f"{point:.2f}" in report and f"{low:.2f}" in report
    # The study ran end to end through the ordinary store: the journal
    # and per-cell records exist for every cell.
    assert len(store.completed_keys()) == len(spec.cells())
    assert os.path.exists(store.report_md_path.parent)
