"""CellStore: durability, spec pinning, journaling, reports."""

from __future__ import annotations

import json

import pytest

from repro.lab import CellStore, StudyMismatchError, StudySpec


def make_spec(**overrides) -> StudySpec:
    base = dict(
        name="store-study",
        policies=("pop", "default"),
        workloads=("cifar10",),
        seeds=(0,),
        baseline={"policy": "pop"},
    )
    base.update(overrides)
    return StudySpec(**base)


def payload_for(key: str) -> dict:
    return {
        "key": key,
        "label": f"label-{key}",
        "cell": {"policy": "pop"},
        "result": {"reached_target": True, "time_to_target": 60.0},
        "wall_seconds": 0.5,
    }


def test_save_and_load_round_trip(tmp_path):
    store = CellStore(tmp_path / "study")
    store.save_cell("abc123", payload_for("abc123"))
    assert store.has("abc123")
    assert not store.has("zzz")
    assert store.completed_keys() == {"abc123"}
    assert store.load_cell("abc123") == payload_for("abc123")


def test_no_partial_files_visible(tmp_path):
    store = CellStore(tmp_path)
    store.save_cell("k1", payload_for("k1"))
    # atomic write leaves no temp droppings behind
    names = {path.name for path in store.cells_dir.iterdir()}
    assert names == {"k1.json"}


def test_journal_records_completion_order(tmp_path):
    store = CellStore(tmp_path)
    for key in ("k1", "k2", "k3"):
        store.save_cell(key, payload_for(key))
    journal = store.journal()
    assert [entry["key"] for entry in journal] == ["k1", "k2", "k3"]
    assert journal[0]["label"] == "label-k1"
    assert CellStore(tmp_path / "fresh").journal() == []


def test_spec_pinning(tmp_path):
    store = CellStore(tmp_path)
    spec = make_spec()
    store.save_spec(spec)
    assert store.load_spec() == spec
    store.save_spec(spec)  # identical re-save is a no-op (resume path)
    with pytest.raises(StudyMismatchError, match="different spec"):
        store.save_spec(make_spec(seeds=(0, 1)))


def test_load_spec_missing(tmp_path):
    with pytest.raises(FileNotFoundError, match="not a study directory"):
        CellStore(tmp_path).load_spec()


def test_find_missing(tmp_path):
    spec = make_spec()
    store = CellStore(tmp_path)
    store.save_spec(spec)
    cells = spec.cells()
    assert store.find_missing() == [cell.key() for cell in cells]
    store.save_cell(cells[0].key(), payload_for(cells[0].key()))
    assert store.find_missing(spec) == [cell.key() for cell in cells[1:]]


def test_mtime_ns_tracks_cell_file(tmp_path):
    store = CellStore(tmp_path)
    store.save_cell("k1", payload_for("k1"))
    first = store.mtime_ns("k1")
    assert first == store.mtime_ns("k1")  # stable while untouched
    store.save_cell("k1", payload_for("k1"))
    assert store.mtime_ns("k1") >= first  # rewrite refreshes the stamp


def test_write_report(tmp_path):
    store = CellStore(tmp_path)
    store.write_report("# hi\n", {"winner": "pop"})
    assert store.report_md_path.read_text() == "# hi\n"
    parsed = json.loads(store.report_json_path.read_text())
    assert parsed == {"winner": "pop"}
    # deterministic rendering: same payload -> same bytes
    before = store.report_json_path.read_bytes()
    store.write_report("# hi\n", {"winner": "pop"})
    assert store.report_json_path.read_bytes() == before
