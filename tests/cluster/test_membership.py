"""Tests for heartbeat membership (stubbed transport, no sockets)."""

from __future__ import annotations

import time

import pytest

from repro.cluster.membership import HeartbeatMonitor, NodeState
from repro.observability import Recorder


class StubTransport:
    """Captures pings; lets tests drive the monitor's callbacks by hand."""

    def __init__(self):
        self.pings = []
        self.ping_ok = True
        # HeartbeatMonitor wires these in its constructor.
        self.on_node_connected = None
        self.on_node_disconnected = None
        self.on_pong = None

    def ping(self, machine_id, seq):
        self.pings.append((machine_id, seq))
        return self.ping_ok


def make_monitor(machine_ids=("machine-00", "machine-01"), **kwargs):
    transport = StubTransport()
    recorder = Recorder()
    monitor = HeartbeatMonitor(
        transport,
        list(machine_ids),
        interval=kwargs.pop("interval", 0.01),
        miss_threshold=kwargs.pop("miss_threshold", 3),
        recorder=recorder,
    )
    return transport, recorder, monitor


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


def test_miss_threshold_validation():
    with pytest.raises(ValueError, match="miss_threshold"):
        make_monitor(miss_threshold=0)


def test_nodes_start_down_until_hello():
    _, _, monitor = make_monitor()
    assert monitor.state("machine-00") == NodeState.DOWN
    assert monitor.nodes_up == 0
    assert not monitor.wait_all_up(timeout=0.01)


def test_wait_all_up_after_every_hello():
    transport, recorder, monitor = make_monitor()
    transport.on_node_connected("machine-00")
    assert not monitor.wait_all_up(timeout=0.01)
    transport.on_node_connected("machine-01")
    assert monitor.wait_all_up(timeout=0.01)
    assert monitor.nodes_up == 2
    ups = recorder.audit.query("cluster_node_up")
    assert [(r.machine_id, r.data["reason"]) for r in ups] == [
        ("machine-00", "connected"),
        ("machine-01", "connected"),
    ]


def test_unknown_machine_ignored():
    transport, _, monitor = make_monitor()
    transport.on_node_connected("machine-99")
    transport.on_node_disconnected("machine-99")
    transport.on_pong("machine-99", 1, 0.001)
    assert monitor.nodes_up == 0


def test_disconnect_is_immediate_death():
    transport, recorder, monitor = make_monitor()
    downs = []
    transport.on_node_connected("machine-00")
    monitor.on_down = downs.append
    transport.on_node_disconnected("machine-00")
    assert monitor.state("machine-00") == NodeState.DOWN
    assert downs == ["machine-00"]
    events = recorder.audit.query("cluster_node_down")
    assert len(events) == 1
    assert events[0].data["reason"] == "connection_lost"
    # The gauge tracks the transition.
    assert recorder.metrics.get("cluster_nodes_up").value() == 0


def test_silent_node_dies_after_miss_threshold():
    transport, recorder, monitor = make_monitor(
        machine_ids=("machine-00",), interval=0.01, miss_threshold=3
    )
    downs = []
    monitor.on_down = downs.append
    transport.on_node_connected("machine-00")
    monitor.start()
    try:
        # Never answer: three ping rounds later the node is down.
        assert wait_for(lambda: downs == ["machine-00"])
        assert len(transport.pings) >= 3
        events = recorder.audit.query("cluster_node_down")
        assert events[0].data["reason"] == "heartbeat_timeout"
        # Dead connected nodes keep receiving pings (they might wake).
    finally:
        monitor.stop()


def test_pongs_keep_node_alive():
    transport, _, monitor = make_monitor(
        machine_ids=("machine-00",), interval=0.01, miss_threshold=2
    )
    downs = []
    monitor.on_down = downs.append
    transport.on_node_connected("machine-00")
    monitor.start()
    try:
        deadline = time.monotonic() + 0.2
        while time.monotonic() < deadline:
            if transport.pings:
                _, seq = transport.pings[-1]
                transport.on_pong("machine-00", seq, 0.001)
            time.sleep(0.002)
        assert downs == []
        assert monitor.is_up("machine-00")
    finally:
        monitor.stop()


def test_silent_node_recovers_when_pongs_resume():
    transport, recorder, monitor = make_monitor(machine_ids=("machine-00",))
    ups, downs = [], []
    transport.on_node_connected("machine-00")
    monitor.on_up = ups.append
    monitor.on_down = downs.append
    # Simulate the ping loop's verdict without running it.
    monitor.start()
    try:
        assert wait_for(lambda: downs == ["machine-00"])
        # Socket is still connected; a pong revives the node.
        transport.on_pong("machine-00", 99, 0.002)
        assert monitor.is_up("machine-00")
        assert ups == ["machine-00"]
        events = recorder.audit.query("cluster_node_up")
        assert events[-1].data["reason"] == "heartbeats_resumed"
    finally:
        monitor.stop()


def test_reconnect_revives_dead_node():
    transport, recorder, monitor = make_monitor(machine_ids=("machine-00",))
    ups = []
    transport.on_node_connected("machine-00")
    transport.on_node_disconnected("machine-00")
    assert monitor.state("machine-00") == NodeState.DOWN
    monitor.on_up = ups.append
    transport.on_node_connected("machine-00")
    assert monitor.is_up("machine-00")
    assert ups == ["machine-00"]
    assert recorder.audit.query("cluster_node_up")[-1].data["reason"] == "connected"


def test_pong_records_rtt_histogram():
    transport, recorder, monitor = make_monitor()
    transport.on_node_connected("machine-00")
    transport.on_pong("machine-00", 1, 0.005)
    histogram = recorder.metrics.get("cluster_heartbeat_rtt_seconds")
    assert histogram is not None
    assert histogram.count(machine_id="machine-00") == 1


def test_stop_suppresses_shutdown_noise():
    transport, recorder, monitor = make_monitor()
    downs = []
    monitor.on_down = downs.append
    transport.on_node_connected("machine-00")
    transport.on_node_connected("machine-01")
    monitor.stop()
    # Worker-exit EOFs during tear-down must not pollute the audit trail.
    transport.on_node_disconnected("machine-00")
    transport.on_pong("machine-01", 5, 0.001)
    assert downs == []
    assert recorder.audit.query("cluster_node_down") == []


# ------------------------------------------------- expected departures


def test_expected_departure_routes_to_on_departed_not_on_down():
    transport, recorder, monitor = make_monitor()
    downs, departed = [], []
    monitor.on_down = downs.append
    monitor.on_departed = lambda machine_id, reason: departed.append(
        (machine_id, reason)
    )
    transport.on_node_connected("machine-00")
    monitor.expect_departure("machine-00", "spot_revocation")
    transport.on_node_disconnected("machine-00")
    assert downs == []  # not a failure: no migration retry charge
    assert departed == [("machine-00", "spot_revocation")]
    assert recorder.audit.query("cluster_node_down") == []
    events = recorder.audit.query("cluster_node_departed")
    assert len(events) == 1
    assert events[0].machine_id == "machine-00"
    assert events[0].data["reason"] == "spot_revocation"


def test_expected_departure_fires_on_heartbeat_timeout_too():
    transport, recorder, monitor = make_monitor(
        machine_ids=("machine-00",), interval=0.01, miss_threshold=2
    )
    downs, departed = [], []
    monitor.on_down = downs.append
    monitor.on_departed = lambda machine_id, reason: departed.append(reason)
    transport.on_node_connected("machine-00")
    monitor.expect_departure("machine-00", "drain")
    monitor.start()
    try:
        assert wait_for(lambda: departed == ["drain"])
        assert downs == []
        assert recorder.audit.query("cluster_node_down") == []
    finally:
        monitor.stop()


def test_reconnect_cancels_expected_departure():
    transport, recorder, monitor = make_monitor()
    downs = []
    monitor.on_down = downs.append
    transport.on_node_connected("machine-00")
    monitor.expect_departure("machine-00", "drain")
    # The node says hello again: the goodbye is off, a later silent
    # death is a real failure again.
    transport.on_node_connected("machine-00")
    transport.on_node_disconnected("machine-00")
    assert downs == ["machine-00"]
    assert recorder.audit.query("cluster_node_departed") == []
    assert len(recorder.audit.query("cluster_node_down")) == 1


def test_departure_expectation_is_one_shot():
    transport, recorder, monitor = make_monitor()
    downs, departed = [], []
    monitor.on_down = downs.append
    monitor.on_departed = lambda machine_id, reason: departed.append(reason)
    transport.on_node_connected("machine-00")
    monitor.expect_departure("machine-00", "drain")
    transport.on_node_disconnected("machine-00")
    transport.on_node_connected("machine-00")
    transport.on_node_disconnected("machine-00")
    assert departed == ["drain"]
    assert downs == ["machine-00"]  # the second death is real


def test_snapshot_carries_expected_departure():
    transport, _, monitor = make_monitor()
    transport.on_node_connected("machine-00")
    monitor.expect_departure("machine-00", "spot_revocation")
    snapshot = monitor.snapshot()
    assert snapshot["machine-00"]["expected_departure"] == "spot_revocation"
    assert snapshot["machine-01"]["expected_departure"] is None


# ------------------------------------------------- elastic membership


def test_add_node_tracks_late_joiner():
    transport, _, monitor = make_monitor(machine_ids=("machine-00",))
    monitor.add_node("machine-05")
    assert monitor.state("machine-05") == NodeState.DOWN
    transport.on_node_connected("machine-05")
    assert monitor.is_up("machine-05")
    assert monitor.wait_node_up("machine-05", timeout=0.01)


def test_add_node_is_idempotent():
    transport, _, monitor = make_monitor(machine_ids=("machine-00",))
    transport.on_node_connected("machine-00")
    monitor.add_node("machine-00")  # must not reset the node's health
    assert monitor.is_up("machine-00")


def test_remove_node_forgets_machine_and_updates_gauge():
    transport, recorder, monitor = make_monitor()
    transport.on_node_connected("machine-00")
    transport.on_node_connected("machine-01")
    monitor.remove_node("machine-01")
    assert monitor.nodes_up == 1
    assert recorder.metrics.get("cluster_nodes_up").value() == 1.0
    # Late frames from the forgotten node are ignored.
    transport.on_node_disconnected("machine-01")
    assert recorder.audit.query("cluster_node_down") == []


def test_wait_node_up_times_out_when_silent():
    _, _, monitor = make_monitor()
    assert not monitor.wait_node_up("machine-00", timeout=0.02)


def test_is_up_false_for_unknown_or_removed_node():
    # Revocation targeting probes candidates that may already have
    # been reaped and forgotten — never-seen and removed nodes are
    # simply not up, not an error.
    _, _, monitor = make_monitor()
    assert not monitor.is_up("machine-99")
    monitor.remove_node("machine-00")
    assert not monitor.is_up("machine-00")
