"""Tests for the socket transport (head bus + worker endpoint).

Everything runs in one process: the "worker" endpoints live on test
threads, which exercises the real TCP path without process spawns.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster.faults import DelaySend, DropHeartbeats, FaultPlan
from repro.cluster.transport import ClusterTransport, NodeFailure, WorkerEndpoint


def wait_for(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def transport():
    bus = ClusterTransport()
    yield bus
    bus.close()


def make_endpoint(transport, machine_id, fault_plan=None):
    host, port = transport.address
    endpoint = WorkerEndpoint(host, port, machine_id, fault_plan=fault_plan)
    return endpoint


def test_hello_registers_route(transport):
    connected = []
    transport.on_node_connected = connected.append
    transport.start()
    endpoint = make_endpoint(transport, "machine-00")
    try:
        endpoint.connect()
        assert wait_for(lambda: transport.has_connection("machine-00"))
        assert connected == ["machine-00"]
        assert endpoint.connection_generation == 1
    finally:
        endpoint.close()


def test_send_routes_to_worker_mailbox(transport):
    transport.start()
    endpoint = make_endpoint(transport, "machine-00")
    try:
        endpoint.connect()
        assert wait_for(lambda: transport.has_connection("machine-00"))
        transport.send("machine-00", "rpc", {"method": "noop"}, sender="head")
        message = endpoint.mailbox.get(timeout=2.0)
        assert message is not None
        assert message.kind == "rpc"
        assert message.payload == {"method": "noop"}
        assert message.sender == "head"
    finally:
        endpoint.close()


def test_worker_send_reaches_head_topic(transport):
    reply_box = transport.declare_topic("reply/machine-00")
    transport.start()
    endpoint = make_endpoint(transport, "machine-00")
    try:
        endpoint.connect()
        assert wait_for(lambda: transport.has_connection("machine-00"))
        endpoint.send("reply/machine-00", "rpc_reply", {"seq": 1, "ok": True})
        message = reply_box.get(timeout=2.0)
        assert message is not None
        assert message.payload == {"seq": 1, "ok": True}
        assert message.sender == "machine-00"
    finally:
        endpoint.close()


def test_local_topics_still_work(transport):
    mailbox = transport.declare_topic("drive/machine-00")
    transport.send("drive/machine-00", "start", None, sender="scheduler")
    message = mailbox.get(timeout=1.0)
    assert message is not None
    assert message.kind == "start"


def test_send_to_undeclared_topic_is_strict(transport):
    with pytest.raises(KeyError, match="no subscriber"):
        transport.send("nowhere", "x", None, sender="test")


def test_ping_pong_roundtrip(transport):
    pongs = []
    transport.on_pong = lambda machine_id, seq, rtt: pongs.append(
        (machine_id, seq, rtt)
    )
    transport.start()
    endpoint = make_endpoint(transport, "machine-00")
    try:
        endpoint.connect()
        assert wait_for(lambda: transport.has_connection("machine-00"))
        assert transport.ping("machine-00", seq=7)
        assert wait_for(lambda: len(pongs) == 1)
        machine_id, seq, rtt = pongs[0]
        assert machine_id == "machine-00"
        assert seq == 7
        assert 0.0 <= rtt < 5.0
    finally:
        endpoint.close()


def test_ping_unknown_machine_returns_false(transport):
    transport.start()
    assert not transport.ping("machine-99", seq=1)


def test_disconnect_fires_callback(transport):
    disconnected = []
    transport.on_node_disconnected = disconnected.append
    transport.start()
    endpoint = make_endpoint(transport, "machine-00")
    endpoint.connect()
    assert wait_for(lambda: transport.has_connection("machine-00"))
    endpoint.close()
    assert wait_for(lambda: disconnected == ["machine-00"])
    assert not transport.has_connection("machine-00")


def test_worker_sees_connection_lost_poison_pill(transport):
    transport.start()
    endpoint = make_endpoint(transport, "machine-00")
    try:
        endpoint.connect()
        assert wait_for(lambda: transport.has_connection("machine-00"))
        transport.disconnect("machine-00")
        message = endpoint.mailbox.get(timeout=2.0)
        assert message is not None
        assert message.kind == "connection_lost"
    finally:
        endpoint.close()


def test_reconnect_restores_route(transport):
    connected = []
    transport.on_node_connected = connected.append
    transport.start()
    endpoint = make_endpoint(transport, "machine-00")
    try:
        endpoint.connect()
        assert wait_for(lambda: transport.has_connection("machine-00"))
        transport.disconnect("machine-00")
        assert endpoint.mailbox.get(timeout=2.0).kind == "connection_lost"
        assert endpoint.reconnect()
        assert endpoint.connection_generation == 2
        assert wait_for(lambda: connected == ["machine-00", "machine-00"])
        # The new connection carries traffic.
        transport.send("machine-00", "rpc", {"method": "noop"}, sender="head")
        message = endpoint.mailbox.get(timeout=2.0)
        assert message is not None and message.kind == "rpc"
    finally:
        endpoint.close()


def test_reconnect_gives_up_when_head_is_gone():
    transport = ClusterTransport()
    host, port = transport.address
    transport.close()
    endpoint = WorkerEndpoint(
        host, port, "machine-00",
        reconnect_base_seconds=0.01, reconnect_max_attempts=2,
    )
    assert not endpoint.reconnect()


def test_send_after_close_raises_node_failure(transport):
    transport.start()
    endpoint = make_endpoint(transport, "machine-00")
    endpoint.connect()
    endpoint.close()
    with pytest.raises(NodeFailure):
        endpoint.send("head", "rpc", None)


def test_drop_heartbeats_fault_swallows_pongs(transport):
    pongs = []
    transport.on_pong = lambda machine_id, seq, rtt: pongs.append(seq)
    transport.start()
    plan = FaultPlan((DropHeartbeats("machine-00", after=0, count=2),))
    endpoint = make_endpoint(transport, "machine-00", fault_plan=plan)
    try:
        endpoint.connect()
        assert wait_for(lambda: transport.has_connection("machine-00"))
        for seq in (1, 2, 3):
            assert transport.ping("machine-00", seq=seq)
        # The first two pings are swallowed; only seq 3 is answered.
        assert wait_for(lambda: pongs == [3])
        time.sleep(0.05)
        assert pongs == [3]
    finally:
        endpoint.close()


def test_delay_send_fault_slows_frames(transport):
    reply_box = transport.declare_topic("reply/machine-00")
    transport.start()
    plan = FaultPlan((DelaySend("machine-00", seconds=0.15, after=0),))
    endpoint = make_endpoint(transport, "machine-00", fault_plan=plan)
    try:
        endpoint.connect()
        assert wait_for(lambda: transport.has_connection("machine-00"))
        start = time.monotonic()
        endpoint.send("reply/machine-00", "msg", 1)
        assert reply_box.get(timeout=2.0) is not None
        assert time.monotonic() - start >= 0.15
    finally:
        endpoint.close()


def test_frames_for_vanished_topics_are_dropped(transport):
    transport.start()
    endpoint = make_endpoint(transport, "machine-00")
    try:
        endpoint.connect()
        assert wait_for(lambda: transport.has_connection("machine-00"))
        # No head-side mailbox for this topic: the reader must swallow
        # the KeyError (a reply outliving its waiter), not die.
        endpoint.send("reply/gone", "rpc_reply", {"seq": 9})
        time.sleep(0.05)
        assert transport.has_connection("machine-00")
        # The connection still works afterwards.
        box = transport.declare_topic("reply/machine-00")
        endpoint.send("reply/machine-00", "rpc_reply", {"seq": 10})
        assert box.get(timeout=2.0) is not None
    finally:
        endpoint.close()


def test_concurrent_worker_sends_are_frame_atomic(transport):
    sink = transport.declare_topic("sink")
    transport.start()
    endpoint = make_endpoint(transport, "machine-00")
    try:
        endpoint.connect()
        assert wait_for(lambda: transport.has_connection("machine-00"))

        def blast(tag):
            for i in range(50):
                endpoint.send("sink", "msg", {"tag": tag, "i": i})

        threads = [
            threading.Thread(target=blast, args=(k,)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert wait_for(lambda: sink.pending == 200)
        received = sink.drain()
        for tag in range(4):
            seq = [m.payload["i"] for m in received if m.payload["tag"] == tag]
            assert seq == sorted(seq)  # per-sender FIFO survives the wire
    finally:
        endpoint.close()


def test_close_is_idempotent(transport):
    transport.start()
    transport.close()
    transport.close()
