"""Tests for the length-prefixed wire protocol."""

from __future__ import annotations

import json
import socket
import struct

import numpy as np
import pytest

from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    decode_payload,
    encode_payload,
    pack_frame,
    recv_frame,
    send_frame,
)


def roundtrip(value):
    return decode_payload(json.loads(json.dumps(encode_payload(value))))


def test_codec_roundtrips_ndarray_dtype_and_shape():
    array = np.arange(12, dtype=np.float32).reshape(3, 4)
    back = roundtrip(array)
    assert isinstance(back, np.ndarray)
    assert back.dtype == np.float32
    assert back.shape == (3, 4)
    np.testing.assert_array_equal(back, array)


def test_codec_roundtrips_bit_exact_float64():
    array = np.array([0.1, np.pi, 1e-300, -0.0])
    np.testing.assert_array_equal(roundtrip(array), array)


def test_codec_roundtrips_bytes():
    assert roundtrip(b"\x00\xff\x01snapshot") == b"\x00\xff\x01snapshot"
    assert roundtrip(bytearray(b"abc")) == b"abc"


def test_codec_converts_numpy_scalars_to_python():
    assert roundtrip(np.float64(0.5)) == 0.5
    assert roundtrip(np.int64(7)) == 7
    assert isinstance(roundtrip(np.int64(7)), int)


def test_codec_handles_nested_structures():
    value = {
        "snapshot": {"weights": np.ones(3), "epoch": np.int32(4)},
        "history": [np.float32(0.1), {"blob": b"xyz"}],
        "plain": [1, "two", None, True],
    }
    back = roundtrip(value)
    np.testing.assert_array_equal(back["snapshot"]["weights"], np.ones(3))
    assert back["snapshot"]["epoch"] == 4
    assert back["history"][1]["blob"] == b"xyz"
    assert back["plain"] == [1, "two", None, True]


def test_decoded_ndarray_is_writable():
    # np.frombuffer yields a read-only view; decode must copy.
    back = roundtrip(np.zeros(3))
    back[0] = 1.0
    assert back[0] == 1.0


def test_frames_roundtrip_over_socketpair():
    left, right = socket.socketpair()
    try:
        document = {
            "topic": "machine-00",
            "kind": "rpc",
            "payload": {"weights": np.arange(5.0)},
            "sender": "head",
        }
        send_frame(left, document)
        send_frame(left, {"topic": "t", "kind": "second", "payload": None})
        first = recv_frame(right)
        second = recv_frame(right)
        assert first["kind"] == "rpc"
        np.testing.assert_array_equal(first["payload"]["weights"], np.arange(5.0))
        assert second["kind"] == "second"
    finally:
        left.close()
        right.close()


def test_clean_eof_returns_none():
    left, right = socket.socketpair()
    left.close()
    try:
        assert recv_frame(right) is None
    finally:
        right.close()


def test_truncated_frame_raises():
    left, right = socket.socketpair()
    try:
        frame = pack_frame({"topic": "t", "kind": "k", "payload": "x" * 100})
        left.sendall(frame[: len(frame) - 10])
        left.close()
        with pytest.raises(FrameError, match="mid-frame"):
            recv_frame(right)
    finally:
        right.close()


def test_oversized_length_prefix_raises():
    left, right = socket.socketpair()
    try:
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError, match="exceeds"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_oversized_body_rejected_at_pack_time(monkeypatch):
    from repro.cluster import protocol

    monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
    with pytest.raises(FrameError, match="exceeds"):
        pack_frame({"payload": "x" * 100})


def test_malformed_json_body_raises():
    left, right = socket.socketpair()
    try:
        body = b"not json at all"
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(FrameError, match="malformed"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_non_object_body_raises():
    left, right = socket.socketpair()
    try:
        body = b"[1,2,3]"
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(FrameError, match="JSON object"):
            recv_frame(right)
    finally:
        left.close()
        right.close()
