"""End-to-end cluster runtime tests (real worker processes).

These spawn actual OS processes per machine, so they are the slowest
tests in the suite — each scenario is a full experiment over the framed
TCP transport with heartbeats running.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import standard_configs
from repro.autoscale import ON_DEMAND, SPOT, FleetControl, FleetOptions
from repro.cluster import (
    DropHeartbeats,
    FaultPlan,
    KillAtEpoch,
    SpotRevocation,
    run_cluster,
)
from repro.framework.experiment import ExperimentSpec
from repro.framework.job import JobState
from repro.observability import Recorder
from repro.policies.bandit import BanditPolicy
from repro.policies.default import DefaultPolicy
from repro.registry import build_policy
from repro.runtime.local import run_live

N_CONFIGS = 6
KILL_EPOCH = 7
CHECKPOINT_INTERVAL = 3


def make_spec(**overrides):
    defaults = dict(
        num_machines=3,
        num_configs=N_CONFIGS,
        seed=0,
        stop_on_target=False,
        checkpoint_interval=CHECKPOINT_INTERVAL,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def run_small_cluster(workload, policy, predictor, fault_plan=None,
                      recorder=None, time_scale=2e-5, **kwargs):
    return run_cluster(
        workload,
        policy,
        configs=standard_configs(workload, N_CONFIGS),
        spec=make_spec(),
        predictor=predictor,
        time_scale=time_scale,
        fault_plan=fault_plan,
        recorder=recorder,
        heartbeat_interval=0.05,
        **kwargs,
    )


def test_argument_validation(cifar10_workload):
    with pytest.raises(ValueError, match="exactly one"):
        run_cluster(cifar10_workload, BanditPolicy())
    configs = standard_configs(cifar10_workload, 2)
    with pytest.raises(ValueError, match="time_scale"):
        run_cluster(
            cifar10_workload, BanditPolicy(), configs=configs, time_scale=0.0
        )
    with pytest.raises(ValueError, match="retry_budget"):
        run_cluster(
            cifar10_workload, BanditPolicy(), configs=configs, retry_budget=-1
        )


def test_cluster_matches_in_process_live_runtime(cifar10_workload, fast_predictor):
    """The decoupling claim: the scheduler and policy run unchanged
    whether Node Agents are in-process objects or worker processes on
    the other end of a socket.  Same spec, both runtimes, same answer."""
    configs = standard_configs(cifar10_workload, N_CONFIGS)
    spec = make_spec()
    live = run_live(
        cifar10_workload,
        BanditPolicy(),
        configs=configs,
        spec=spec,
        time_scale=2e-5,
    )
    clustered = run_cluster(
        cifar10_workload,
        BanditPolicy(),
        configs=configs,
        spec=spec,
        predictor=fast_predictor,
        time_scale=2e-5,
    )
    assert clustered.epochs_trained == live.epochs_trained
    assert clustered.best_metric == pytest.approx(live.best_metric, rel=1e-9)
    states_live = sorted((j.job_id, j.state.value) for j in live.jobs)
    states_cluster = sorted((j.job_id, j.state.value) for j in clustered.jobs)
    assert states_cluster == states_live
    assert clustered.machine_failures == 0


def test_sigkill_worker_migrates_job_and_matches_clean_run(
    cifar10_workload, fast_predictor
):
    """The acceptance scenario: SIGKILL one of three workers mid-run.
    The run completes, the dead node's job resumes from its snapshot at
    the right epoch on a survivor, and the result equals a failure-free
    run with the same seed.

    DefaultPolicy runs every configuration to completion, so equality
    is strict down to per-epoch metrics: if migration resumed from the
    wrong epoch or corrupted the restored state, the displaced job's
    curve would diverge from the clean run's.  (Policies that make
    time-sensitive cross-job decisions — bandit eliminations, POP
    suspends — can legitimately schedule differently around the
    detection gap, so they are exercised elsewhere.)"""
    clean = run_small_cluster(cifar10_workload, DefaultPolicy(), fast_predictor)

    recorder = Recorder()
    plan = FaultPlan((KillAtEpoch("machine-01", KILL_EPOCH),))
    faulted = run_small_cluster(
        cifar10_workload, DefaultPolicy(), fast_predictor,
        fault_plan=plan, recorder=recorder,
    )

    # The worker really died and was noticed.
    assert faulted.machine_failures == 1
    downs = recorder.audit.query("cluster_node_down")
    assert [(r.machine_id, r.data["reason"]) for r in downs] == [
        ("machine-01", "connection_lost")
    ]

    # Its job migrated to a survivor and resumed from the snapshot: the
    # kill lands mid-epoch KILL_EPOCH, so the last periodic checkpoint
    # (epoch 6 with checkpoint_interval=3) is the resume point and the
    # in-flight epoch was never recorded — nothing counted lost.
    migrations = recorder.audit.query("cluster_migration")
    assert len(migrations) == 1
    migration = migrations[0]
    assert migration.machine_id != "machine-01"
    assert migration.data["resume_epoch"] == KILL_EPOCH - 1
    assert faulted.epochs_lost_to_failures == 0
    assert recorder.metrics.get("cluster_migrations_total").total == 1

    # The migrated job ran to a terminal state like everything else.
    terminal = {JobState.COMPLETED, JobState.TERMINATED}
    job_states = {j.job_id: j.state for j in faulted.jobs}
    assert job_states[migration.job_id] in terminal
    assert all(state in terminal for state in job_states.values())

    # Failure recovery is transparent: same outcome as the clean run.
    assert faulted.epochs_trained == clean.epochs_trained
    assert faulted.best_metric == pytest.approx(clean.best_metric, rel=1e-9)
    assert faulted.best_job_id == clean.best_job_id
    assert faulted.reached_target == clean.reached_target
    states_clean = sorted((j.job_id, j.state.value) for j in clean.jobs)
    states_faulted = sorted((j.job_id, j.state.value) for j in faulted.jobs)
    assert states_faulted == states_clean
    # ... down to every job's per-epoch metric curve, which is the
    # strongest statement that the snapshot restore was bit-exact.
    curves_clean = {j.job_id: j.metrics for j in clean.jobs}
    curves_faulted = {j.job_id: j.metrics for j in faulted.jobs}
    assert curves_faulted == curves_clean


def test_fault_injection_is_deterministic(cifar10_workload, fast_predictor):
    """Two POP runs with the same seed and fault plan produce the same
    fault audit trail (modulo wall-clock timestamps and which survivor
    the job lands on): the injected failure hits the same machine at
    the same epoch and the job resumes from the same snapshot."""

    def one_run():
        recorder = Recorder()
        plan = FaultPlan((KillAtEpoch("machine-01", KILL_EPOCH),))
        result = run_small_cluster(
            cifar10_workload, build_policy("pop"), fast_predictor,
            fault_plan=plan, recorder=recorder,
        )
        projection = []
        for record in recorder.audit.records:
            if record.kind == "cluster_node_down":
                projection.append(
                    (record.kind, record.machine_id, record.data["reason"])
                )
            elif record.kind in (
                "cluster_migration", "cluster_retry_budget_exhausted"
            ):
                # The destination machine is whichever survivor frees
                # first — scheduling, not fault injection — so it is
                # excluded; everything else must reproduce exactly.
                projection.append(
                    (
                        record.kind,
                        record.job_id,
                        record.data.get("resume_epoch"),
                        record.data.get("resume_latency"),
                    )
                )
        return result, projection

    first_result, first_trail = one_run()
    second_result, second_trail = one_run()
    assert first_trail == second_trail
    # POP's kill decisions ride on curve predictions, whose per-machine
    # streams depend on which survivor hosts which job — a scheduling
    # race, not fault-injection nondeterminism — so only the failure
    # handling itself is asserted identical, not the full trajectory.
    assert first_result.machine_failures == second_result.machine_failures == 1


def test_silent_node_is_declared_dead_then_recovers(
    cifar10_workload, fast_predictor
):
    """Drop pongs long enough to trip the miss threshold: the node is
    declared dead and its job migrates; when pongs resume the node
    rejoins the pool and the run still completes."""
    recorder = Recorder()
    plan = FaultPlan((DropHeartbeats("machine-01", after=5, count=12),))
    result = run_small_cluster(
        cifar10_workload,
        build_policy("pop"),
        fast_predictor,
        fault_plan=plan,
        recorder=recorder,
        time_scale=2e-4,  # slow enough that recovery happens mid-run
        miss_threshold=3,
    )
    downs = recorder.audit.query("cluster_node_down")
    assert [(r.machine_id, r.data["reason"]) for r in downs] == [
        ("machine-01", "heartbeat_timeout")
    ]
    resumed = [
        r
        for r in recorder.audit.query("cluster_node_up")
        if r.data["reason"] == "heartbeats_resumed"
    ]
    assert [r.machine_id for r in resumed] == ["machine-01"]
    assert result.machine_failures == 1
    assert len(recorder.audit.query("cluster_migration")) == 1
    terminal = {JobState.COMPLETED, JobState.TERMINATED}
    assert all(job.state in terminal for job in result.jobs)


def test_spot_revocation_with_grace_matches_clean_run(
    cifar10_workload, fast_predictor
):
    """The elasticity acceptance scenario: a spot revocation notice
    with a live grace window.  The doomed worker's job suspends at the
    next epoch boundary, snapshot-migrates to a survivor, and the
    instance dies as an *expected* departure — zero failures, zero lost
    epochs, and per-epoch curves identical to a run that was never
    revoked."""
    clean = run_small_cluster(cifar10_workload, DefaultPolicy(), fast_predictor)

    recorder = Recorder()
    # grace is in experiment seconds; at time_scale 2e-5 this is a
    # ~0.5 s real window — many epoch boundaries, so the drain always
    # beats the kill.
    plan = FaultPlan(
        (SpotRevocation("machine-01", epoch=KILL_EPOCH, grace=25_000.0),)
    )
    revoked = run_small_cluster(
        cifar10_workload, DefaultPolicy(), fast_predictor,
        fault_plan=plan, recorder=recorder,
    )

    # The notice was heard and classified as an expected departure:
    # no silent-death bookkeeping anywhere.
    notices = recorder.audit.query("cluster_spot_revocation")
    assert [r.machine_id for r in notices] == ["machine-01"]
    assert recorder.audit.query("cluster_node_down") == []
    departed = recorder.audit.query("cluster_node_departed")
    assert [(r.machine_id, r.data["reason"]) for r in departed] == [
        ("machine-01", "spot_revocation")
    ]
    assert revoked.machine_failures == 0
    assert revoked.epochs_lost_to_failures == 0

    # The graceful path relands the job through the ordinary
    # suspend/resume machinery, never the failure-migration path (a
    # departed-with-job would have fallen back to it and counted a
    # failure above).
    assert recorder.audit.query("cluster_migration") == []

    # Migration is transparent: identical to the unrevoked run, down to
    # every job's per-epoch metric curve.
    assert revoked.epochs_trained == clean.epochs_trained
    assert revoked.best_metric == pytest.approx(clean.best_metric, rel=1e-9)
    states_clean = sorted((j.job_id, j.state.value) for j in clean.jobs)
    states_revoked = sorted((j.job_id, j.state.value) for j in revoked.jobs)
    assert states_revoked == states_clean
    curves_clean = {j.job_id: j.metrics for j in clean.jobs}
    curves_revoked = {j.job_id: j.metrics for j in revoked.jobs}
    assert curves_revoked == curves_clean


def test_elastic_fleet_meters_cost_and_publishes_status(
    cifar10_workload, fast_predictor, tmp_path
):
    """A metered mixed fleet: the run charges machine-seconds at
    class-distinct rates, journals a reconciling cost trail, and
    publishes fleet status through the control handle."""
    import json

    recorder = Recorder()
    control = FleetControl()
    cost_path = tmp_path / "cost.jsonl"
    fleet = FleetOptions(
        experiment_id="exp-e2e",
        spot_fraction=0.34,  # newest 1 of 3 machines is spot
        cost_path=cost_path,
    )
    result = run_small_cluster(
        cifar10_workload, DefaultPolicy(), fast_predictor,
        recorder=recorder, fleet=fleet, fleet_control=control,
    )
    assert result.machine_failures == 0

    # The control handle saw the final publish.
    status = control.status()
    assert status["classes"] == {
        "machine-00": ON_DEMAND,
        "machine-01": ON_DEMAND,
        "machine-02": SPOT,
    }
    assert status["cost"]["spent_dollars"] > 0.0

    # The trail reconciles: summed machine-seconds at the model's rates
    # equal the dollars charged.
    with open(cost_path) as handle:
        records = [json.loads(line) for line in handle if line.strip()]
    summary = records[-1]
    assert summary["event"] == "cost_summary"
    assert summary["experiment"] == "exp-e2e"
    seconds = summary["machine_seconds"]
    rates = summary["rates"]
    expected = sum(
        seconds.get(cls, 0.0) / 3600.0 * rate
        for cls, rate in (
            (ON_DEMAND, rates["on_demand_rate"]),
            (SPOT, rates["spot_rate"]),
        )
    )
    assert summary["spent_dollars"] == pytest.approx(expected, rel=1e-6)

    # Gauges made it into the recorder; the final publish lands after
    # shutdown, so workers_up has drained back to zero but the
    # cumulative machine-second meters keep the whole run's usage.
    workers_up = recorder.metrics.get("cost_workers_up")
    assert workers_up.value(**{"class": ON_DEMAND}) == 0.0
    machine_seconds = recorder.metrics.get("cost_machine_seconds")
    assert machine_seconds.value(**{"class": ON_DEMAND}) > 0.0
    assert recorder.metrics.get("cost_spent_dollars").value(
        experiment="exp-e2e"
    ) == pytest.approx(summary["spent_dollars"], rel=1e-6)
