"""End-to-end telemetry-plane test (the issue's acceptance scenario).

One cluster run, three real worker processes, one SIGKILLed mid-run.
From that single run the test asserts the whole telemetry plane:

(a) the head's merged ``/metrics``-style export contains node-labelled
    worker metrics from **every** node — including the one that died
    seconds into the run;
(b) at least one trace stitches head scheduler → worker epoch → head
    settlement under a shared trace id;
(c) ``repro diagnose`` over the produced journal reports a migration
    phase whose duration matches the audit trail's ``resume_latency``
    within tolerance.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import standard_configs
from repro.cluster import FaultPlan, KillAtEpoch, run_cluster
from repro.framework.experiment import ExperimentSpec
from repro.observability import (
    InMemoryExporter,
    Recorder,
    TelemetryAggregator,
)
from repro.observability.diagnose import diagnose, render_markdown
from repro.registry import build_policy

N_CONFIGS = 6
KILL_EPOCH = 7
MACHINES = ("machine-00", "machine-01", "machine-02")


@pytest.fixture(scope="module")
def telemetry_run(request):
    """One faulted cluster run shared by every assertion below."""
    cifar10_workload = request.getfixturevalue("cifar10_workload")
    fast_predictor = request.getfixturevalue("fast_predictor")
    exporter = InMemoryExporter()
    recorder = Recorder(exporter=exporter, trace=True)
    aggregator = TelemetryAggregator()
    result = run_cluster(
        cifar10_workload,
        build_policy("pop"),
        configs=standard_configs(cifar10_workload, N_CONFIGS),
        spec=ExperimentSpec(
            num_machines=3,
            num_configs=N_CONFIGS,
            seed=0,
            stop_on_target=False,
            checkpoint_interval=3,
        ),
        predictor=fast_predictor,
        time_scale=2e-5,
        fault_plan=FaultPlan((KillAtEpoch("machine-01", KILL_EPOCH),)),
        recorder=recorder,
        aggregator=aggregator,
        heartbeat_interval=0.05,
        telemetry_interval=0.05,
    )
    return result, recorder, aggregator, exporter


def test_merged_export_covers_every_node(telemetry_run):
    result, _, aggregator, _ = telemetry_run
    assert result.machine_failures == 1
    assert set(aggregator.node_ids) == {"head", *MACHINES}
    text = aggregator.render_text()
    for machine in MACHINES:
        # Even machine-01 (killed at epoch 7, well inside the first
        # second) shipped at least its worker_up gauge.
        assert f'node="{machine}"' in text
    # Head metrics carry the node label too, so one scrape separates
    # scheduler-side and worker-side series.
    assert 'scheduler_epochs_total{node="head"}' in text
    assert 'cluster_heartbeat_rtt_seconds' in text
    # The head's meta channel carries the membership snapshot.
    membership = aggregator.node("head")["meta"]["heartbeat"]
    assert membership["machine-01"]["state"] == "down"
    history = aggregator.history()
    assert history and any(s["node"] != "head" for s in history)


def test_trace_spans_head_worker_and_settlement(telemetry_run):
    _, _, _, exporter = telemetry_run
    spans = [e for e in exporter.events if e.get("kind") == "span"]
    by_trace = {}
    for span in spans:
        by_trace.setdefault(span["trace_id"], []).append(span)

    stitched = 0
    for trace in by_trace.values():
        names = {span["name"] for span in trace}
        if {
            "cluster.epoch", "worker.train_epoch", "scheduler.process_epoch"
        } <= names:
            epoch = next(
                s for s in trace if s["name"] == "cluster.epoch"
            )
            train = next(
                s for s in trace if s["name"] == "worker.train_epoch"
            )
            settle = next(
                s for s in trace if s["name"] == "scheduler.process_epoch"
            )
            # Worker spans were shipped (re-exported with their node)
            # and parent onto the head's epoch span.
            assert train["node"] in MACHINES
            assert train["parent_id"] == epoch["span_id"]
            assert settle["parent_id"] == epoch["span_id"]
            stitched += 1
    assert stitched > 0


def test_diagnose_reconciles_migration_with_audit(telemetry_run, tmp_path):
    _, recorder, _, exporter = telemetry_run
    journal = tmp_path / "events.jsonl"
    journal.write_text(
        "\n".join(json.dumps(event) for event in exporter.events) + "\n"
    )

    from repro.observability.diagnose import load_journals

    report = diagnose(load_journals([journal]))
    exp = report["experiments"]["events"]

    migrations = recorder.audit.query("cluster_migration")
    assert len(migrations) >= 1
    audited = sum(r.data["resume_latency"] for r in migrations)
    assert exp["phases"]["seconds"]["migrate"] == pytest.approx(
        audited, rel=1e-6
    )
    assert exp["phases"]["counts"]["migrate"] == len(migrations)

    # Train dominates predict+migrate on this workload, and the killed
    # worker's epochs are in the breakdown via shipped spans.
    assert exp["phases"]["seconds"]["train"] > 0
    assert set(exp["phases"]["machines"]) >= set(MACHINES)

    # The critical-path summary sees cross-process chains.
    assert exp["critical_path"]["multi_span_traces"] > 0

    markdown = render_markdown(report)
    assert "cluster_migration" in markdown
    assert "| migrate |" in markdown
