"""Tests for the deterministic fault-injection plans."""

from __future__ import annotations

import pytest

from repro.cluster.faults import (
    DelaySend,
    DropHeartbeats,
    FaultPlan,
    KillAtEpoch,
    SpotRevocation,
)


def test_fault_validation():
    with pytest.raises(ValueError, match="epoch"):
        KillAtEpoch("machine-00", 0)
    with pytest.raises(ValueError, match="count"):
        DropHeartbeats("machine-00", after=0, count=0)
    with pytest.raises(ValueError, match="after"):
        DropHeartbeats("machine-00", after=-1, count=1)
    with pytest.raises(ValueError, match="seconds"):
        DelaySend("machine-00", seconds=-0.1)


def test_plan_filters_by_machine():
    plan = FaultPlan(
        (
            KillAtEpoch("machine-01", 3),
            KillAtEpoch("machine-01", 7),
            DropHeartbeats("machine-02", after=5, count=4),
            DelaySend("machine-00", seconds=0.2, after=10),
        )
    )
    assert plan.kill_epoch("machine-01") == 3  # earliest trigger wins
    assert plan.kill_epoch("machine-00") is None
    assert plan.heartbeat_drops("machine-02") == [
        DropHeartbeats("machine-02", after=5, count=4)
    ]
    assert plan.send_delays("machine-00") == [
        DelaySend("machine-00", seconds=0.2, after=10)
    ]
    sub = plan.for_machine("machine-01")
    assert len(sub.faults) == 2
    assert all(f.machine_id == "machine-01" for f in sub.faults)


def test_empty_plan_is_falsy():
    assert not FaultPlan()
    assert FaultPlan((KillAtEpoch("m", 1),))


def test_dict_roundtrip():
    plan = FaultPlan(
        (
            KillAtEpoch("machine-01", 3),
            DropHeartbeats("machine-02", after=5, count=4),
            DelaySend("machine-00", seconds=0.2, after=10),
        )
    )
    assert FaultPlan.from_dicts(plan.to_dicts()) == plan


def test_from_dicts_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan.from_dicts([{"kind": "meteor_strike", "machine_id": "m"}])


def test_parse_cli_specs():
    plan = FaultPlan.parse(
        kill=["machine-01@epoch:3"],
        drop_heartbeats=["machine-02@after:5,count:4"],
        delay_send=["machine-00@seconds:0.2,after:10", "machine-01@seconds:0.5"],
    )
    assert plan.kill_epoch("machine-01") == 3
    assert plan.heartbeat_drops("machine-02")[0].count == 4
    delays = plan.send_delays("machine-00")
    assert delays[0].seconds == pytest.approx(0.2)
    assert delays[0].after == 10
    assert plan.send_delays("machine-01")[0].after == 0  # default


@pytest.mark.parametrize(
    "bad",
    ["machine-01", "machine-01@", "@epoch:3", "machine-01@epoch", "machine-01@epoch:"],
)
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError, match="bad --kill"):
        FaultPlan.parse(kill=[bad])


def test_parse_requires_mandatory_keys():
    with pytest.raises(ValueError, match="missing required 'epoch'"):
        FaultPlan.parse(kill=["machine-01@other:3"])
    with pytest.raises(ValueError, match="missing required"):
        FaultPlan.parse(drop_heartbeats=["machine-01@after:3"])


# -------------------------------------------------------- spot revocation


def test_spot_revocation_validation():
    with pytest.raises(ValueError, match="epoch"):
        SpotRevocation("machine-00", epoch=0)
    with pytest.raises(ValueError, match="grace"):
        SpotRevocation("machine-00", epoch=2, grace=-1.0)


def test_plan_selects_earliest_revocation():
    plan = FaultPlan(
        (
            SpotRevocation("machine-01", epoch=5, grace=10.0),
            SpotRevocation("machine-01", epoch=2, grace=20.0),
        )
    )
    revocation = plan.spot_revocation("machine-01")
    assert revocation.epoch == 2
    assert revocation.grace == pytest.approx(20.0)
    assert plan.spot_revocation("machine-00") is None


def test_spot_revocation_dict_roundtrip():
    plan = FaultPlan((SpotRevocation("machine-02", epoch=4, grace=15.0),))
    assert FaultPlan.from_dicts(plan.to_dicts()) == plan


def test_parse_revoke_specs():
    plan = FaultPlan.parse(
        revoke=["machine-03@epoch:4,grace:12.5", "machine-01@epoch:2"]
    )
    revocation = plan.spot_revocation("machine-03")
    assert revocation.epoch == 4
    assert revocation.grace == pytest.approx(12.5)
    # grace defaults when omitted.
    assert plan.spot_revocation("machine-01").grace == pytest.approx(30.0)


def test_parse_revoke_requires_epoch():
    with pytest.raises(ValueError, match="missing required 'epoch'"):
        FaultPlan.parse(revoke=["machine-01@grace:5"])
