"""Trainer: instrumentation, checkpoints, and artifact determinism."""

import filecmp

import pytest

from repro.learn.trainer import (
    TrainerConfig,
    evaluate_agent,
    run_episode,
    train_policy,
)
from repro.observability.recorder import Recorder

TINY = TrainerConfig(
    episodes=8,
    group_size=4,
    seed_pool=2,
    checkpoint_every=1,
    num_configs=4,
    slots=2,
    tmax_hours=2.0,
)


@pytest.fixture(scope="module")
def shared_env():
    from repro.sim.env import EnvConfig, SchedulerEnv

    return SchedulerEnv(
        EnvConfig(
            workload=TINY.workload,
            generator=TINY.generator,
            num_configs=TINY.num_configs,
            slots=TINY.slots,
            tmax_hours=TINY.tmax_hours,
            stream_seed=TINY.stream_seed,
        )
    )


class TestTrainPolicy:
    def test_instruments_and_audit(self, tmp_path, shared_env):
        recorder = Recorder()
        path = tmp_path / "artifact.json"
        result = train_policy(
            TINY, artifact_path=str(path), recorder=recorder,
            env=shared_env,
        )
        assert len(result["rewards"]) == TINY.episodes
        assert path.exists()

        snapshot = recorder.metrics.to_dict()
        for name in (
            "learn_episode_reward",
            "learn_policy_entropy",
            "learn_best_reward",
            "learn_baseline",
        ):
            assert name in snapshot, name
        episodes_total = snapshot["learn_episodes_total"]["samples"][0]
        assert episodes_total["value"] == TINY.episodes

        events = [record.kind for record in recorder.audit.records]
        assert "learn_checkpoint" in events
        assert events[-1] == "learn_artifact_frozen"
        frozen = recorder.audit.records[-1]
        assert frozen.data["path"] == str(path)

    def test_progress_callback(self, shared_env):
        seen = []
        train_policy(TINY, env=shared_env, progress=seen.append)
        assert len(seen) == TINY.episodes // TINY.group_size
        assert seen[-1]["episode"] == TINY.episodes
        assert "best_reward" in seen[-1] and "entropy" in seen[-1]

    def test_artifact_provenance(self, shared_env):
        result = train_policy(TINY, env=shared_env)
        provenance = result["artifact"]["provenance"]
        assert provenance["trainer"] == TINY.to_dict()
        assert provenance["episodes"] == TINY.episodes
        assert provenance["best_reward"] == result["best_reward"]

    def test_retrain_is_byte_identical(self, tmp_path):
        # The acceptance determinism test: same config + seed => the
        # frozen artifacts compare equal byte for byte.  Fresh envs per
        # run so no episode state can leak between them.
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        train_policy(TINY, artifact_path=str(first))
        train_policy(TINY, artifact_path=str(second))
        assert filecmp.cmp(str(first), str(second), shallow=False)

    def test_seed_changes_artifact(self, tmp_path, shared_env):
        base = train_policy(TINY, env=shared_env)
        other = train_policy(
            TrainerConfig(**{**TINY.to_dict(), "seed": 1}), env=shared_env
        )
        assert base["artifact"]["weights"] != other["artifact"]["weights"]


class TestEpisodeHelpers:
    def test_run_episode_greedy_has_no_records(self, shared_env):
        from repro.learn.agent import ReinforceAgent
        from repro.learn.features import FEATURE_NAMES

        agent = ReinforceAgent(len(FEATURE_NAMES), seed=0)
        rollout = run_episode(shared_env, agent, gen_seed=10_000, greedy=True)
        assert rollout["records"] == []
        assert rollout["info"]["target_reached"] in (True, False)

    def test_evaluate_agent_means(self, shared_env):
        from repro.learn.agent import ReinforceAgent
        from repro.learn.features import FEATURE_NAMES

        agent = ReinforceAgent(len(FEATURE_NAMES), seed=0)
        evaluation = evaluate_agent(shared_env, agent, [10_000, 10_001])
        assert len(evaluation["rewards"]) == 2
        assert evaluation["mean_reward"] == pytest.approx(
            sum(evaluation["rewards"]) / 2
        )
