"""REINFORCE agent: determinism, serialization, action validity, learning."""

import numpy as np

from repro.learn.agent import KILL_BIAS_INIT, PolicyNetwork, ReinforceAgent
from repro.learn.features import FEATURE_NAMES

N_FEATURES = len(FEATURE_NAMES)


def _features(n, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.uniform(-1.0, 1.0, size=(n, N_FEATURES))
    features[:, -1] = 1.0  # bias column
    return features


class TestPolicyNetwork:
    def test_seeded_init_is_deterministic(self):
        a = PolicyNetwork(N_FEATURES, hidden=8, seed=7)
        b = PolicyNetwork(N_FEATURES, hidden=8, seed=7)
        for name in a.params:
            np.testing.assert_array_equal(a.params[name], b.params[name])

    def test_different_seeds_differ(self):
        a = PolicyNetwork(N_FEATURES, hidden=8, seed=0)
        b = PolicyNetwork(N_FEATURES, hidden=8, seed=1)
        assert not np.array_equal(a.params["W1"], b.params["W1"])

    def test_kill_bias_starts_negative(self):
        net = PolicyNetwork(N_FEATURES)
        assert net.params["b_kill"][0] == KILL_BIAS_INIT

    def test_weights_roundtrip(self):
        original = PolicyNetwork(N_FEATURES, hidden=8, seed=3)
        restored = PolicyNetwork.from_weights(original.weights_dict())
        assert restored.n_features == N_FEATURES
        assert restored.hidden == 8
        features = _features(5)
        for left, right in zip(
            original.forward(features), restored.forward(features)
        ):
            np.testing.assert_allclose(left, right)

    def test_from_weights_rejects_missing_keys(self):
        weights = PolicyNetwork(N_FEATURES).weights_dict()
        del weights["w_alloc"]
        try:
            PolicyNetwork.from_weights(weights)
        except ValueError as error:
            assert "w_alloc" in str(error)
        else:
            raise AssertionError("expected ValueError")

    def test_from_weights_rejects_flat_w1(self):
        weights = PolicyNetwork(N_FEATURES).weights_dict()
        weights["W1"] = [1.0, 2.0, 3.0]
        try:
            PolicyNetwork.from_weights(weights)
        except ValueError as error:
            assert "W1" in str(error)
        else:
            raise AssertionError("expected ValueError")


class TestActions:
    def test_sampled_action_is_valid(self):
        agent = ReinforceAgent(N_FEATURES, seed=0)
        features = _features(6)
        candidates = np.array([0, 2, 3, 5])
        action, record = agent.sample_action(features, candidates, n_slots=2)
        chosen = set(int(i) for i in action.slots)
        killed = set(int(i) for i in action.kills)
        assert len(action.slots) == len(chosen)  # distinct
        assert chosen <= set(candidates.tolist())
        assert killed <= set(candidates.tolist())
        assert chosen.isdisjoint(killed)
        assert len(action.slots) <= 2
        assert record.slot_sequence == [int(i) for i in action.slots]

    def test_sampling_is_seed_deterministic(self):
        features = _features(6)
        candidates = np.arange(6)
        runs = []
        for _ in range(2):
            agent = ReinforceAgent(N_FEATURES, seed=11)
            actions = [
                agent.sample_action(features, candidates, 3)[0]
                for _ in range(5)
            ]
            runs.append(
                [(a.slots.tolist(), a.kills.tolist()) for a in actions]
            )
        assert runs[0] == runs[1]

    def test_greedy_action_ranks_by_alloc_logit(self):
        agent = ReinforceAgent(N_FEATURES, seed=0)
        features = _features(6)
        candidates = np.arange(6)
        action = agent.greedy_action(features, candidates, n_slots=3)
        alloc, kill, _ = agent.net.forward(features)
        survivors = candidates[kill[candidates] <= 0.0]
        expected = survivors[np.argsort(-alloc[survivors], kind="stable")][:3]
        np.testing.assert_array_equal(action.slots, expected)
        assert action.entropy == 0.0


class TestLearning:
    def _rollout(self, agent, features, candidates, steps=4):
        records = []
        for _ in range(steps):
            _, record = agent.sample_action(features, candidates, 2)
            records.append(record)
        return records

    def test_update_moves_params_when_advantaged(self):
        agent = ReinforceAgent(N_FEATURES, seed=0, lr=0.1)
        features = _features(5)
        candidates = np.arange(5)
        before = {k: v.copy() for k, v in agent.net.params.items()}
        records = self._rollout(agent, features, candidates)
        agent.update(records, episode_reward=1.0)  # seeds the baseline
        records = self._rollout(agent, features, candidates)
        agent.update(records, episode_reward=2.0)  # nonzero advantage
        moved = any(
            not np.array_equal(before[k], agent.net.params[k])
            for k in before
        )
        assert moved

    def test_update_group_equal_rewards_no_move(self):
        agent = ReinforceAgent(
            N_FEATURES, seed=0, lr=0.1, entropy_coef=0.0
        )
        features = _features(5)
        candidates = np.arange(5)
        group = [
            (self._rollout(agent, features, candidates), 1.5)
            for _ in range(4)
        ]
        before = {k: v.copy() for k, v in agent.net.params.items()}
        agent.update_group(group, key=0)
        for name in before:
            np.testing.assert_array_equal(
                before[name], agent.net.params[name]
            )

    def test_update_group_learns_a_bandit(self):
        # Degenerate bandit: config 0 always pays, others never.  After
        # enough grouped updates the greedy top pick must be config 0.
        agent = ReinforceAgent(N_FEATURES, seed=0, lr=0.2)
        features = _features(4, seed=5)
        candidates = np.arange(4)
        for _ in range(60):
            group = []
            for _ in range(6):
                action, record = agent.sample_action(
                    features, candidates, 1
                )
                reward = (
                    1.0 if action.slots.size and action.slots[0] == 0
                    else 0.0
                )
                group.append(([record], reward))
            agent.update_group(group, key=0)
        greedy = agent.greedy_action(features, candidates, 1)
        assert greedy.slots.size and int(greedy.slots[0]) == 0
