"""SchedulerEnv: deterministic dynamics, async semantics, termination."""

import numpy as np
import pytest

from repro.learn.features import FEATURE_NAMES
from repro.sim.env import EnvConfig, SchedulerEnv


@pytest.fixture(scope="module")
def env():
    # Module-scoped: workload construction dominates, episodes are cheap.
    return SchedulerEnv(
        EnvConfig(num_configs=6, slots=2, tmax_hours=4.0)
    )


def _random_rollout(env, gen_seed, policy_seed=0, max_steps=5000):
    rng = np.random.default_rng(policy_seed)
    observation = env.reset(gen_seed)
    trace = []
    for _ in range(max_steps):
        candidates = env.candidates()
        if candidates.size == 0:
            break
        pick = int(rng.choice(candidates))
        observation, reward, done, info = env.step([pick])
        trace.append((pick, round(info["elapsed"], 6)))
        if done:
            return reward, info, trace, observation
    raise AssertionError("episode did not terminate")


class TestReset:
    def test_observation_shape(self, env):
        observation = env.reset(1)
        assert observation.shape == (6, len(FEATURE_NAMES))
        # Fresh episode: every configuration unstarted.
        assert np.all(observation[:, FEATURE_NAMES.index("progress")] == 0)

    def test_step_before_reset_raises(self):
        fresh = SchedulerEnv.__new__(SchedulerEnv)
        fresh._state = None
        with pytest.raises(RuntimeError, match="reset"):
            fresh._require_state()

    def test_gen_seed_varies_configs(self, env):
        env.reset(1)
        first = env._state.streams.metrics.copy()
        env.reset(2)
        second = env._state.streams.metrics
        assert not np.array_equal(first, second)

    def test_noise_seed_tracks_gen_seed(self):
        # Same gen_seed => same configuration set, but the training-noise
        # realization is keyed by stream_seed + gen_seed: varying either
        # changes the curves, repeating both reproduces them exactly.
        a = SchedulerEnv(EnvConfig(num_configs=4, slots=2, stream_seed=0))
        b = SchedulerEnv(EnvConfig(num_configs=4, slots=2, stream_seed=1))
        c = SchedulerEnv(EnvConfig(num_configs=4, slots=2, stream_seed=0))
        a.reset(10)
        b.reset(10)
        c.reset(10)
        assert not np.array_equal(
            a._state.streams.metrics, b._state.streams.metrics
        )
        np.testing.assert_array_equal(
            a._state.streams.metrics, c._state.streams.metrics
        )


class TestDeterminism:
    def test_identical_rollouts(self, env):
        first = _random_rollout(env, gen_seed=3, policy_seed=42)
        second = _random_rollout(env, gen_seed=3, policy_seed=42)
        assert first[0] == second[0]          # reward
        assert first[2] == second[2]          # full action/time trace
        np.testing.assert_array_equal(first[3], second[3])

    def test_policy_seed_changes_trace(self, env):
        first = _random_rollout(env, gen_seed=3, policy_seed=1)
        second = _random_rollout(env, gen_seed=3, policy_seed=2)
        assert first[2] != second[2]


class TestStepSemantics:
    def test_one_assignment_per_step(self, env):
        env.reset(4)
        candidates = env.candidates()
        # Ask for two; the async model grants only the first.
        env.step(candidates[:2])
        state = env._state
        assert int((state.epochs > 0).sum()) == 1
        assert state.epochs[int(candidates[0])] == env.window

    def test_running_config_not_a_candidate(self, env):
        env.reset(4)
        first = int(env.candidates()[0])
        env.step([first])
        # The just-assigned configuration is mid-window on machine 0;
        # machine 1 frees at t=0 and must not see it.
        assert first not in set(env.candidates().tolist())

    def test_kills_remove_candidates(self, env):
        env.reset(5)
        everyone = env.candidates().tolist()
        doomed = everyone[1:]
        env.step([everyone[0]], kills=doomed)
        remaining = set(env.candidates().tolist())
        assert remaining.isdisjoint(set(doomed))

    def test_kill_everything_terminates(self, env):
        env.reset(6)
        everyone = env.candidates().tolist()
        observation, reward, done, info = env.step([], kills=everyone)
        assert done
        assert info["killed"] == everyone
        assert reward == 0.0  # nothing trained, nothing earned

    def test_terminal_reward_bounds(self, env):
        reward, info, _, _ = _random_rollout(env, gen_seed=7)
        assert 0.0 <= reward <= 2.0
        if info["target_reached"]:
            assert info["time_to_target"] is not None
            assert reward > 1.0 - info["time_to_target"] / env.tmax
        else:
            # Terminal without the target: the horizon expired or every
            # curve was exhausted/killed, and the best-accuracy term is
            # all the reward there is.
            assert reward <= 1.0
