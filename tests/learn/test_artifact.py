"""Frozen artifact I/O: determinism, atomicity, validation."""

import json
import os

import pytest

from repro.learn.agent import PolicyNetwork
from repro.learn.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    PRETRAINED_PATH,
    load_artifact,
    make_artifact,
    write_artifact,
)
from repro.learn.features import FEATURE_NAMES


def _artifact():
    net = PolicyNetwork(len(FEATURE_NAMES), hidden=4, seed=0)
    return make_artifact(
        weights=net.weights_dict(),
        hidden=4,
        provenance={"trainer": {"episodes": 2}},
    )


class TestWrite:
    def test_write_is_byte_deterministic(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        write_artifact(str(first), _artifact())
        write_artifact(str(second), _artifact())
        assert first.read_bytes() == second.read_bytes()

    def test_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "artifact.json"
        write_artifact(str(path), _artifact())
        assert sorted(os.listdir(tmp_path)) == ["artifact.json"]

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "artifact.json"
        document = _artifact()
        write_artifact(str(path), document)
        loaded = load_artifact(str(path))
        assert loaded == document
        restored = PolicyNetwork.from_weights(loaded["weights"])
        assert restored.hidden == 4


class TestValidation:
    def _write(self, tmp_path, mutate):
        document = _artifact()
        mutate(document)
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(document))
        return str(path)

    def test_rejects_wrong_format(self, tmp_path):
        path = self._write(
            tmp_path, lambda d: d.update(format="something-else")
        )
        with pytest.raises(ValueError, match=ARTIFACT_FORMAT):
            load_artifact(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = self._write(
            tmp_path, lambda d: d.update(version=ARTIFACT_VERSION + 1)
        )
        with pytest.raises(ValueError, match="version"):
            load_artifact(path)

    def test_rejects_feature_version_drift(self, tmp_path):
        def mutate(document):
            document["feature_schema"]["version"] += 1

        with pytest.raises(ValueError, match="retrain"):
            load_artifact(self._write(tmp_path, mutate))

    def test_rejects_feature_name_drift(self, tmp_path):
        def mutate(document):
            document["feature_schema"]["names"][0] = "renamed"

        with pytest.raises(ValueError, match="feature names"):
            load_artifact(self._write(tmp_path, mutate))

    def test_rejects_missing_weights(self, tmp_path):
        path = self._write(tmp_path, lambda d: d.pop("weights"))
        with pytest.raises(ValueError, match="weights"):
            load_artifact(path)


class TestPretrained:
    def test_committed_artifact_loads(self):
        assert os.path.exists(PRETRAINED_PATH)
        artifact = load_artifact(PRETRAINED_PATH)
        net = PolicyNetwork.from_weights(artifact["weights"])
        assert net.n_features == len(FEATURE_NAMES)
        trainer = artifact["provenance"]["trainer"]
        # The committed artifact must be the TrainerConfig() default
        # recipe, or the determinism claim in the docs is wrong.
        from repro.learn.trainer import TrainerConfig

        assert trainer == TrainerConfig().to_dict()
