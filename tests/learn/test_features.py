"""Feature schema and featurization invariants (train/serve contract)."""

import numpy as np
import pytest

from repro.learn.features import (
    FEATURE_NAMES,
    FEATURE_VERSION,
    ConfigStateArrays,
    arrays_from_jobs,
    feature_matrix,
    feature_schema,
)
from repro.registry import build_workload


def _state(**overrides):
    base = dict(
        epochs=np.array([0, 4, 8]),
        last=np.array([0.0, 0.4, 0.8]),
        prev=np.array([0.0, 0.2, 0.7]),
        best=np.array([0.0, 0.4, 0.8]),
        invested=np.array([0.0, 120.0, 300.0]),
        elapsed=600.0,
        tmax=3600.0,
        slots=4,
        window=4,
        max_epochs=16,
        norm_target=0.9,
    )
    base.update(overrides)
    return ConfigStateArrays(**base)


class TestFeatureSchema:
    def test_schema_matches_names(self):
        schema = feature_schema()
        assert schema["version"] == FEATURE_VERSION
        assert schema["names"] == list(FEATURE_NAMES)

    def test_bias_is_last_feature(self):
        assert FEATURE_NAMES[-1] == "bias"


class TestFeatureMatrix:
    def test_shape_and_bounds(self):
        features = feature_matrix(_state())
        assert features.shape == (3, len(FEATURE_NAMES))
        assert np.all(features >= -1.0) and np.all(features <= 1.0)

    def test_bias_column_is_one(self):
        features = feature_matrix(_state())
        assert np.all(features[:, FEATURE_NAMES.index("bias")] == 1.0)

    def test_unstarted_defaults(self):
        # Row 0 has no epochs: gain 0, ert/confidence at the "unknown,
        # not hopeless" 0.5 prior.
        features = feature_matrix(_state())
        row = features[0]
        assert row[FEATURE_NAMES.index("gain")] == 0.0
        assert row[FEATURE_NAMES.index("ert")] == 0.5
        assert row[FEATURE_NAMES.index("confidence")] == 0.5
        assert row[FEATURE_NAMES.index("progress")] == 0.0

    def test_target_met_zeroes_ert(self):
        state = _state(last=np.array([0.0, 0.95, 0.8]))
        features = feature_matrix(state)
        assert features[1, FEATURE_NAMES.index("ert")] == 0.0

    def test_stalled_config_gets_unreachable_ert(self):
        # No gain over the last window and short of target -> ert 1.
        state = _state(
            last=np.array([0.0, 0.4, 0.8]),
            prev=np.array([0.0, 0.4, 0.8]),
        )
        features = feature_matrix(state)
        assert features[1, FEATURE_NAMES.index("ert")] == 1.0
        assert features[2, FEATURE_NAMES.index("ert")] == 1.0

    def test_time_left_clipped(self):
        features = feature_matrix(_state(elapsed=7200.0))
        assert np.all(features[:, FEATURE_NAMES.index("time_left")] == 0.0)


class TestArraysFromJobs:
    def test_serve_path_matches_history(self):
        workload = build_workload("cifar10")
        domain = workload.domain

        class FakeJob:
            def __init__(self, metrics, seconds):
                self.metrics = list(metrics)
                self.epochs_completed = len(metrics)
                self.total_training_time = seconds

        window = domain.eval_boundary
        history = [0.30 + 0.01 * i for i in range(window + 2)]
        jobs = [FakeJob([], 0.0), FakeJob(history, 55.0)]
        state = arrays_from_jobs(
            jobs,
            domain=domain,
            elapsed=100.0,
            tmax=3600.0,
            slots=4,
            target=domain.target,
        )
        assert state.n_configs == 2
        assert state.epochs[0] == 0 and state.last[0] == 0.0
        assert state.epochs[1] == len(history)
        assert state.invested[1] == pytest.approx(55.0)
        expected_last = float(domain.normalize(history[-1]))
        expected_prev = float(domain.normalize(history[-1 - window]))
        assert state.last[1] == pytest.approx(expected_last)
        assert state.prev[1] == pytest.approx(expected_prev)
        assert state.best[1] == pytest.approx(expected_last)
        # The serve-path state featurizes identically to any other
        # ConfigStateArrays — shared code, no skew by construction.
        features = feature_matrix(state)
        assert features.shape == (2, len(FEATURE_NAMES))
