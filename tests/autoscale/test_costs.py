"""Cost model, machine classes, and the per-experiment meter."""

from __future__ import annotations

import json

import pytest

from repro.autoscale import (
    ON_DEMAND,
    SPOT,
    CostMeter,
    CostModel,
    machine_classes,
)
from repro.observability import JsonlExporter, Recorder


def read_jsonl(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


def test_cost_model_rates():
    model = CostModel(on_demand_rate=1.0, spot_rate=0.25)
    assert model.rate(ON_DEMAND) == 1.0
    assert model.rate(SPOT) == 0.25
    with pytest.raises(ValueError, match=">= 0"):
        CostModel(on_demand_rate=-1.0)


def test_machine_classes_newest_fraction_is_spot():
    ids = [f"machine-{i:02d}" for i in range(4)]
    classes = machine_classes(ids, 0.5)
    assert classes["machine-00"] == ON_DEMAND
    assert classes["machine-01"] == ON_DEMAND
    assert classes["machine-02"] == SPOT
    assert classes["machine-03"] == SPOT
    assert machine_classes(ids, 0.0) == {m: ON_DEMAND for m in ids}
    assert machine_classes(ids, 1.0) == {m: SPOT for m in ids}
    with pytest.raises(ValueError, match="spot_fraction"):
        machine_classes(ids, 1.5)


def test_meter_charges_class_distinct_rates():
    meter = CostMeter("exp-1", model=CostModel(spot_rate=0.3))
    cost_od = meter.charge(ON_DEMAND, 3600.0)
    cost_spot = meter.charge(SPOT, 3600.0)
    assert cost_od == pytest.approx(1.0)
    assert cost_spot == pytest.approx(0.3)
    assert meter.spent_dollars == pytest.approx(1.3)
    assert meter.machine_seconds(ON_DEMAND) == pytest.approx(3600.0)
    assert meter.machine_seconds() == pytest.approx(7200.0)
    with pytest.raises(ValueError, match=">= 0"):
        meter.charge(ON_DEMAND, -1.0)


def test_meter_budget_accounting_and_exhaustion():
    meter = CostMeter("exp-1", budget_slot_hours=1.0)
    assert meter.budget_dollars == pytest.approx(1.0)
    assert not meter.exhausted
    meter.charge(ON_DEMAND, 1800.0)
    assert meter.remaining_dollars == pytest.approx(0.5)
    meter.charge(ON_DEMAND, 1800.0)
    assert meter.exhausted
    assert meter.remaining_dollars == 0.0  # floors, never negative
    meter.charge(ON_DEMAND, 3600.0)
    assert meter.remaining_dollars == 0.0


def test_meter_without_budget_never_exhausts():
    meter = CostMeter("exp-1")
    meter.charge(ON_DEMAND, 10_000_000.0)
    assert meter.budget_dollars is None
    assert not meter.exhausted


def test_meter_exports_gauges():
    recorder = Recorder()
    meter = CostMeter("exp-1", budget_slot_hours=2.0, recorder=recorder)
    meter.charge(SPOT, 3600.0)
    metrics = recorder.metrics
    assert metrics.get("cost_machine_seconds").value(**{"class": SPOT}) == 3600.0
    assert metrics.get("cost_spent_dollars").value(experiment="exp-1") == (
        pytest.approx(0.3)
    )
    assert metrics.get("cost_budget_dollars").value(experiment="exp-1") == 2.0
    assert metrics.get("cost_budget_remaining_dollars").value(
        experiment="exp-1"
    ) == pytest.approx(1.7)


def test_meter_owned_trail_reconciles(tmp_path):
    path = tmp_path / "cost.jsonl"
    meter = CostMeter(
        "exp-1", budget_slot_hours=5.0, cost_path=path,
        model=CostModel(spot_rate=0.5),
    )
    meter.charge(ON_DEMAND, 1800.0)
    meter.charge(SPOT, 3600.0)
    meter.record("cost_tick", clock=1800.0)
    meter.close()
    records = read_jsonl(path)
    assert [r["event"] for r in records] == ["cost_tick", "cost_summary"]
    summary = records[-1]
    assert summary["machine_seconds"] == {ON_DEMAND: 1800.0, SPOT: 3600.0}
    # The trail's dollars reconcile with the raw machine-seconds.
    expected = 1800.0 / 3600.0 * 1.0 + 3600.0 / 3600.0 * 0.5
    assert summary["spent_dollars"] == pytest.approx(expected)
    assert summary["budget_dollars"] == pytest.approx(5.0)


def test_meter_shared_exporter_not_closed(tmp_path):
    path = tmp_path / "cost.jsonl"
    exporter = JsonlExporter(path)
    first = CostMeter("exp-1", exporter=exporter)
    second = CostMeter("exp-2", exporter=exporter)
    first.charge(ON_DEMAND, 60.0)
    first.close()
    # A shared (daemon-owned) sink survives one experiment's close.
    second.charge(ON_DEMAND, 120.0)
    second.close()
    exporter.close()
    records = read_jsonl(path)
    experiments = [r["experiment"] for r in records]
    assert experiments == ["exp-1", "exp-2"]
    assert all(r["event"] == "cost_summary" for r in records)
