"""FleetOptions validation and the FleetControl command channel."""

from __future__ import annotations

import dataclasses

import pytest

from repro.autoscale import FleetControl, FleetOptions


def test_fleet_options_defaults():
    fleet = FleetOptions()
    assert fleet.autoscale is None
    assert fleet.spot_fraction == 0.0
    assert fleet.budget_slot_hours is None


def test_fleet_options_validation():
    with pytest.raises(ValueError, match="autoscale bounds"):
        FleetOptions(autoscale=(0, 4))
    with pytest.raises(ValueError, match="autoscale bounds"):
        FleetOptions(autoscale=(4, 2))
    with pytest.raises(ValueError, match="spot_fraction"):
        FleetOptions(spot_fraction=1.5)
    with pytest.raises(ValueError, match="grace_seconds"):
        FleetOptions(grace_seconds=-1.0)


def test_fleet_options_template_personalisation():
    template = FleetOptions(autoscale=(1, 4), spot_fraction=0.5)
    run = dataclasses.replace(
        template, experiment_id="exp-7", budget_slot_hours=12.0
    )
    assert run.experiment_id == "exp-7"
    assert run.budget_slot_hours == 12.0
    # The template itself is untouched (one template, many runs).
    assert template.experiment_id == "experiment"
    assert template.budget_slot_hours is None


def test_fleet_control_revocation_queue_drains_once():
    control = FleetControl()
    control.request_revocation()
    control.request_revocation(machine_id="machine-03", grace=5.0)
    drained = control.drain_revocations()
    assert len(drained) == 2
    assert drained[0].machine_id is None
    assert drained[1].machine_id == "machine-03"
    assert drained[1].grace == pytest.approx(5.0)
    assert control.drain_revocations() == []


def test_fleet_control_status_snapshot_is_isolated():
    control = FleetControl()
    assert control.status() == {}
    control.publish({"workers_up": {"on_demand": 2}})
    snapshot = control.status()
    assert snapshot["workers_up"] == {"on_demand": 2}
    snapshot["workers_up"] = "mutated"
    assert control.status()["workers_up"] == {"on_demand": 2}
