"""Autoscaler control law + the broker-pool actuator."""

from __future__ import annotations

import pytest

from repro.autoscale import Autoscaler, PoolAutoscaler
from repro.broker import SlotPool
from repro.observability import Recorder


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_core(min_size=1, max_size=8, **kwargs):
    clock = FakeClock()
    kwargs.setdefault("cooldown_seconds", 5.0)
    core = Autoscaler(min_size, max_size, clock=clock, **kwargs)
    return clock, core


def test_bounds_validation():
    with pytest.raises(ValueError, match="min_size"):
        Autoscaler(0, 4)
    with pytest.raises(ValueError, match="max_size"):
        Autoscaler(4, 2)
    with pytest.raises(ValueError, match="down_pressure"):
        Autoscaler(1, 4, up_pressure=0.5, down_pressure=0.5)
    with pytest.raises(ValueError, match="cooldown"):
        Autoscaler(1, 4, cooldown_seconds=-1.0)


def test_scales_up_under_pressure_with_queued_work():
    _, core = make_core()
    decision = core.evaluate(size=2, busy=2, queue_depth=3)
    assert decision is not None
    assert decision.direction == "up"
    assert decision.target == 5  # demand = busy + queue
    assert decision.reason == "pressure_high"


def test_no_scale_up_without_queue():
    _, core = make_core()
    # Fully busy but nothing waiting: a bigger fleet would idle.
    assert core.evaluate(size=2, busy=2, queue_depth=0) is None


def test_scale_up_clamped_to_max():
    _, core = make_core(max_size=4)
    decision = core.evaluate(size=2, busy=2, queue_depth=50)
    assert decision.target == 4


def test_scales_down_below_low_water_mark():
    _, core = make_core()
    decision = core.evaluate(size=6, busy=2, queue_depth=0)
    assert decision.direction == "down"
    assert decision.target == 2
    assert decision.reason == "pressure_low"


def test_scale_down_never_below_min():
    _, core = make_core(min_size=2)
    decision = core.evaluate(size=6, busy=0, queue_depth=0)
    assert decision.target == 2


def test_hysteresis_band_holds_steady():
    _, core = make_core()
    # Pressure between the marks: neither direction moves.
    assert core.evaluate(size=4, busy=3, queue_depth=0) is None


def test_cooldown_blocks_consecutive_moves():
    clock, core = make_core(cooldown_seconds=10.0)
    assert core.evaluate(size=2, busy=2, queue_depth=4) is not None
    clock.advance(5.0)
    assert core.evaluate(size=4, busy=4, queue_depth=4) is None
    clock.advance(6.0)
    assert core.evaluate(size=4, busy=4, queue_depth=4) is not None


def test_bounds_violations_bypass_cooldown():
    clock, core = make_core(min_size=2, cooldown_seconds=100.0)
    assert core.evaluate(size=2, busy=2, queue_depth=2) is not None
    # Immediately after a move, an out-of-bounds size still corrects.
    decision = core.evaluate(size=1, busy=1, queue_depth=0)
    assert decision.reason == "below_min"
    assert decision.target == 2
    decision = core.evaluate(size=20, busy=0, queue_depth=0)
    assert decision.reason == "above_max"
    assert decision.target == 8


def test_marginal_value_gates_scale_up():
    _, core = make_core(min_marginal_value=0.5)
    # Queued work below the value bar: renting a machine is not worth it.
    assert core.evaluate(size=2, busy=2, queue_depth=3, marginal_value=0.2) is None
    decision = core.evaluate(size=2, busy=2, queue_depth=3, marginal_value=0.8)
    assert decision is not None and decision.direction == "up"


# ---------------------------------------------------------- PoolAutoscaler


def make_pool_autoscaler(total_slots=2, queue=lambda: 0, **core_kwargs):
    recorder = Recorder()
    pool = SlotPool(total_slots=total_slots, recorder=recorder)
    clock = FakeClock()
    core = Autoscaler(1, 8, clock=clock, cooldown_seconds=0.0, **core_kwargs)
    scaler = PoolAutoscaler(
        pool, core, queue_depth=queue, interval=60.0, recorder=recorder
    )
    return recorder, pool, scaler


def test_poke_grows_pool_from_queue_depth():
    recorder, pool, scaler = make_pool_autoscaler(
        total_slots=2, queue=lambda: 3
    )
    pool.acquire("exp-a", "alice", 2)  # saturated
    decision = scaler.poke()
    assert decision is not None and decision.direction == "up"
    assert pool.total_slots == 5
    assert recorder.metrics.get("autoscale_target_slots").value() == 5.0
    events = recorder.audit.query("autoscale")
    assert events[-1].data["direction"] == "up"


def test_poke_shrinks_idle_pool_without_stranding_leases():
    _, pool, scaler = make_pool_autoscaler(total_slots=6, queue=lambda: 0)
    leases = pool.acquire("exp-a", "alice", 2)
    decision = scaler.poke()
    assert decision is not None and decision.direction == "down"
    # The held leases floor the shrink; target drains as they release.
    assert pool.total_slots == 2
    assert pool.held("exp-a") == 2
    pool.release([lease.lease_id for lease in leases])
    assert pool.total_slots == 2


def test_poke_holds_on_unlimited_pool():
    recorder = Recorder()
    pool = SlotPool(recorder=recorder)
    core = Autoscaler(1, 8, cooldown_seconds=0.0)
    scaler = PoolAutoscaler(pool, core, queue_depth=lambda: 99, interval=60.0)
    assert scaler.poke() is None
    assert pool.total_slots is None


def test_on_resize_callback_fires():
    seen = []
    recorder = Recorder()
    pool = SlotPool(total_slots=2, recorder=recorder)
    core = Autoscaler(1, 8, cooldown_seconds=0.0)
    scaler = PoolAutoscaler(
        pool, core, queue_depth=lambda: 4, interval=60.0,
        on_resize=seen.append,
    )
    pool.acquire("exp-a", "alice", 2)
    scaler.poke()
    assert len(seen) == 1 and seen[0].direction == "up"
