"""Tests for the live threaded runtime."""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis.experiments import standard_configs
from repro.framework.experiment import ExperimentSpec
from repro.framework.job import JobState
from repro.policies.bandit import BanditPolicy
from repro.policies.default import DefaultPolicy
from repro.runtime.local import run_live
from repro.sim.runner import run_simulation


def test_requires_generator_xor_configs(cifar10_workload):
    with pytest.raises(ValueError, match="exactly one"):
        run_live(cifar10_workload, DefaultPolicy())


def test_time_scale_validation(cifar10_workload):
    configs = standard_configs(cifar10_workload, 2)
    with pytest.raises(ValueError, match="time_scale"):
        run_live(
            cifar10_workload, DefaultPolicy(), configs=configs, time_scale=0.0
        )


def test_live_default_run_completes_all_jobs(cifar10_workload):
    configs = standard_configs(cifar10_workload, 4)
    result = run_live(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=2, num_configs=4, seed=0, stop_on_target=False
        ),
        time_scale=2e-5,
    )
    assert all(job.state is JobState.COMPLETED for job in result.jobs)
    assert result.epochs_trained == 4 * cifar10_workload.domain.max_epochs


def test_live_stops_on_target(cifar10_workload):
    configs = standard_configs(cifar10_workload, 8)
    result = run_live(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(num_machines=4, num_configs=8, seed=0),
        time_scale=2e-5,
    )
    if result.reached_target:  # depends on the config pool
        assert result.time_to_target is not None
        assert result.best_metric >= cifar10_workload.domain.target


def test_live_matches_simulation_for_bandit(cifar10_workload):
    """Fig 12a: live and simulated runs agree closely.  Bandit is
    deterministic given the trace, so only timing jitter differs."""
    configs = standard_configs(cifar10_workload, 10)
    spec = ExperimentSpec(
        num_machines=3, num_configs=10, seed=0, stop_on_target=False
    )
    sim = run_simulation(
        cifar10_workload, BanditPolicy(), configs=configs, spec=spec
    )
    # The time scale must keep per-epoch Python overhead (~1 ms) small
    # relative to the scaled epoch duration, just as the paper's live
    # runs keep scheduling overhead small relative to real epochs.
    live = run_live(
        cifar10_workload,
        BanditPolicy(),
        configs=configs,
        spec=spec,
        time_scale=3e-4,
    )
    assert live.epochs_trained == sim.epochs_trained
    states_sim = sorted((j.job_id, j.state.value) for j in sim.jobs)
    states_live = sorted((j.job_id, j.state.value) for j in live.jobs)
    assert states_sim == states_live
    # wall-clock agreement within the paper's 13% validation error
    assert live.finished_at == pytest.approx(sim.finished_at, rel=0.13)


def test_live_cancel_event_stops_run_with_partial_result(cifar10_workload):
    """Setting the cancel event mid-run stops the workers gracefully
    and returns the partial result — the daemon's DELETE path."""
    configs = standard_configs(cifar10_workload, 4)
    cancel = threading.Event()
    progressed = []

    def hook(scheduler):
        progressed.append(scheduler.result.epochs_trained)
        cancel.set()

    result = run_live(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=2, num_configs=4, seed=0, stop_on_target=False
        ),
        time_scale=2e-3,
        cancel_event=cancel,
        progress_hook=hook,
        progress_every_epochs=10,
    )
    full = 4 * cifar10_workload.domain.max_epochs
    assert progressed and progressed[0] >= 10
    assert 0 < result.epochs_trained < full


def test_live_preset_cancel_event_returns_promptly(cifar10_workload):
    configs = standard_configs(cifar10_workload, 2)
    cancel = threading.Event()
    cancel.set()
    start = time.monotonic()
    result = run_live(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=2, num_configs=2, seed=0, stop_on_target=False
        ),
        time_scale=2e-3,  # full run would take ~7s wall
        cancel_event=cancel,
    )
    assert time.monotonic() - start < 2.0
    assert result.epochs_trained < 2 * cifar10_workload.domain.max_epochs


def test_live_timestamps_on_simulated_axis(cifar10_workload):
    configs = standard_configs(cifar10_workload, 2)
    result = run_live(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=2, num_configs=2, seed=0, stop_on_target=False
        ),
        time_scale=2e-5,
    )
    # 120 epochs x ~60 s each ~ 7200 simulated seconds.
    assert 3000.0 < result.finished_at < 20000.0
