"""Tests for search-space dimensions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.space import (
    Choice,
    IntUniform,
    LogUniform,
    SearchSpace,
    Uniform,
)


@pytest.fixture()
def space():
    return SearchSpace(
        [
            Uniform("u", 0.0, 1.0),
            LogUniform("lr", 1e-5, 1.0),
            IntUniform("n", 2, 9),
            Choice("act", ("relu", "tanh")),
        ]
    )


def test_dimension_validation():
    with pytest.raises(ValueError):
        Uniform("u", 1.0, 1.0)
    with pytest.raises(ValueError):
        LogUniform("l", 0.0, 1.0)
    with pytest.raises(ValueError):
        LogUniform("l", 2.0, 1.0)
    with pytest.raises(ValueError):
        IntUniform("i", 5, 4)
    with pytest.raises(ValueError):
        Choice("c", ())


def test_duplicate_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        SearchSpace([Uniform("x", 0, 1), Uniform("x", 1, 2)])


def test_sampling_in_range(space, rng):
    for _ in range(100):
        config = space.sample(rng)
        space.validate(config)  # should not raise


def test_log_uniform_spans_orders_of_magnitude(rng):
    dim = LogUniform("lr", 1e-6, 1.0)
    samples = [dim.sample(rng) for _ in range(500)]
    assert min(samples) < 1e-4
    assert max(samples) > 1e-2
    # log-uniform: median of logs near the log-midpoint
    assert abs(np.median(np.log10(samples)) - (-3.0)) < 0.5


def test_grids():
    assert Uniform("u", 0.0, 1.0).grid(3) == [0.0, 0.5, 1.0]
    assert Uniform("u", 0.0, 1.0).grid(1) == [0.5]
    log_grid = LogUniform("l", 0.01, 1.0).grid(3)
    assert log_grid[1] == pytest.approx(0.1)
    assert IntUniform("i", 1, 10).grid(4) == [1, 4, 7, 10]
    assert IntUniform("i", 1, 3).grid(10) == [1, 2, 3]
    assert Choice("c", ("a", "b", "c")).grid(2) == ["a", "b"]
    with pytest.raises(ValueError):
        Uniform("u", 0.0, 1.0).grid(0)


def test_contains():
    assert Uniform("u", 0.0, 1.0).contains(0.5)
    assert not Uniform("u", 0.0, 1.0).contains(1.5)
    assert not Uniform("u", 0.0, 1.0).contains("x")
    assert IntUniform("i", 1, 5).contains(3)
    assert not IntUniform("i", 1, 5).contains(3.5)
    assert Choice("c", ("a",)).contains("a")
    assert not Choice("c", ("a",)).contains("b")


def test_validate_errors(space, rng):
    config = space.sample(rng)
    missing = dict(config)
    del missing["u"]
    with pytest.raises(ValueError, match="missing"):
        space.validate(missing)
    extra = dict(config)
    extra["zzz"] = 1
    with pytest.raises(ValueError, match="unknown"):
        space.validate(extra)
    bad = dict(config)
    bad["n"] = 99
    with pytest.raises(ValueError, match="outside"):
        space.validate(bad)


def test_unit_roundtrip(space, rng):
    for _ in range(50):
        config = space.sample(rng)
        unit = space.to_unit(config)
        assert unit.shape == (4,)
        assert np.all((unit >= 0) & (unit <= 1))
        back = space.from_unit(unit)
        assert back["n"] == config["n"]
        assert back["act"] == config["act"]
        assert back["u"] == pytest.approx(config["u"], abs=1e-9)
        assert back["lr"] == pytest.approx(config["lr"], rel=1e-9)


def test_from_unit_wrong_length(space):
    with pytest.raises(ValueError, match="coordinates"):
        space.from_unit([0.5, 0.5])


def test_space_container_protocol(space):
    assert len(space) == 4
    assert space.names == ["u", "lr", "n", "act"]
    assert space["lr"].name == "lr"


@given(st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=50, deadline=None)
def test_from_unit_always_valid(u):
    space = SearchSpace(
        [
            Uniform("a", -3.0, 7.0),
            LogUniform("b", 1e-4, 1e2),
            IntUniform("c", 0, 100),
            Choice("d", (1, 2, 3)),
        ]
    )
    config = space.from_unit([u, u, u, u])
    space.validate(config)
