"""Tests for the Hyperparameter Generators."""

from __future__ import annotations


import numpy as np
import pytest

from repro.generators.base import ExhaustedSpaceError
from repro.generators.bayesian import (
    BayesianGenerator,
    GaussianProcess,
    expected_improvement,
)
from repro.generators.grid import GridGenerator
from repro.generators.random_gen import RandomGenerator
from repro.generators.space import Choice, LogUniform, SearchSpace, Uniform


@pytest.fixture()
def space():
    return SearchSpace(
        [Uniform("x", 0.0, 1.0), Uniform("y", 0.0, 1.0)]
    )


# --------------------------------------------------------------- random


def test_random_determinism(space):
    a = RandomGenerator(space, seed=42)
    b = RandomGenerator(space, seed=42)
    for _ in range(10):
        ja, ca = a.create_job()
        jb, cb = b.create_job()
        assert ja == jb and ca == cb


def test_random_job_ids_unique(space):
    gen = RandomGenerator(space, seed=0)
    ids = {gen.create_job()[0] for _ in range(50)}
    assert len(ids) == 50


def test_random_max_configs(space):
    gen = RandomGenerator(space, seed=0, max_configs=3)
    for _ in range(3):
        gen.create_job()
    with pytest.raises(ExhaustedSpaceError):
        gen.create_job()
    with pytest.raises(ValueError):
        RandomGenerator(space, max_configs=0)


def test_report_and_lookup(space):
    gen = RandomGenerator(space, seed=0)
    job_id, config = gen.create_job()
    gen.report_final_performance(job_id, 0.9)
    assert gen.num_reported == 1
    assert gen.configuration_of(job_id) == config
    assert gen.configuration_of("nope") is None
    with pytest.raises(KeyError):
        gen.report_final_performance("nope", 0.5)


# ----------------------------------------------------------------- grid


def test_grid_enumerates_cartesian_product():
    space = SearchSpace([Uniform("x", 0.0, 1.0), Choice("c", ("a", "b"))])
    gen = GridGenerator(space, resolution=2)
    configs = [gen.create_job()[1] for _ in range(4)]
    assert {(c["x"], c["c"]) for c in configs} == {
        (0.0, "a"), (0.0, "b"), (1.0, "a"), (1.0, "b")
    }
    with pytest.raises(ExhaustedSpaceError, match="fully enumerated"):
        gen.create_job()


def test_grid_max_configs(space):
    gen = GridGenerator(space, resolution=5, max_configs=7)
    for _ in range(7):
        gen.create_job()
    with pytest.raises(ExhaustedSpaceError, match="capped"):
        gen.create_job()


def test_grid_resolution_validation(space):
    with pytest.raises(ValueError):
        GridGenerator(space, resolution=0)


# ------------------------------------------------------------------- GP


def test_gp_interpolates_training_points():
    gp = GaussianProcess(noise=1e-6)
    x = np.array([[0.1], [0.5], [0.9]])
    y = np.array([1.0, 2.0, 0.5])
    gp.fit(x, y)
    mean, std = gp.predict(x)
    np.testing.assert_allclose(mean, y, atol=0.01)
    assert np.all(std < 0.1)


def test_gp_uncertainty_grows_away_from_data():
    gp = GaussianProcess()
    gp.fit(np.array([[0.5]]), np.array([1.0]))
    _, near = gp.predict(np.array([[0.5]]))
    _, far = gp.predict(np.array([[0.0]]))
    assert far[0] > near[0]


def test_gp_requires_fit_before_predict():
    with pytest.raises(RuntimeError, match="fitted"):
        GaussianProcess().predict(np.array([[0.5]]))


def test_gp_validation():
    with pytest.raises(ValueError, match="positive"):
        GaussianProcess(length_scale=0.0)
    gp = GaussianProcess()
    with pytest.raises(ValueError, match="matching"):
        gp.fit(np.zeros((3, 1)), np.zeros(2))
    with pytest.raises(ValueError, match="zero observations"):
        gp.fit(np.zeros((0, 1)), np.zeros(0))


def test_expected_improvement_behaviour():
    ei_better = expected_improvement(np.array([2.0]), np.array([0.1]), best=1.0)
    ei_worse = expected_improvement(np.array([0.5]), np.array([0.1]), best=1.0)
    assert ei_better[0] > ei_worse[0]
    # zero std, below best -> ~zero EI
    assert expected_improvement(np.array([0.5]), np.array([0.0]), best=1.0)[0] < 1e-9


# ------------------------------------------------------------- Bayesian


def test_bayesian_warmup_matches_random(space):
    bayes = BayesianGenerator(space, seed=9, warmup=5)
    rand = RandomGenerator(space, seed=9)
    for _ in range(5):
        assert bayes.create_job()[1] == rand.create_job()[1]


def test_bayesian_validation(space):
    with pytest.raises(ValueError, match="warmup"):
        BayesianGenerator(space, warmup=0)
    with pytest.raises(ValueError, match="pool_size"):
        BayesianGenerator(space, pool_size=1)


def test_bayesian_outperforms_random_on_smooth_objective():
    """GP-EI should find better points than random search on a smooth
    2-D objective within the same evaluation budget."""

    def objective(config):
        return -((config["x"] - 0.3) ** 2) - (config["y"] - 0.7) ** 2

    def run(generator, budget=40):
        best = -np.inf
        for _ in range(budget):
            job_id, config = generator.create_job()
            value = objective(config)
            generator.report_final_performance(job_id, value)
            best = max(best, value)
        return best

    space = SearchSpace([Uniform("x", 0.0, 1.0), Uniform("y", 0.0, 1.0)])
    bayes_scores = [
        run(BayesianGenerator(space, seed=s, warmup=8)) for s in range(5)
    ]
    random_scores = [run(RandomGenerator(space, seed=s)) for s in range(5)]
    assert np.mean(bayes_scores) > np.mean(random_scores)


def test_bayesian_max_configs(space):
    gen = BayesianGenerator(space, seed=0, max_configs=2)
    gen.create_job()
    gen.create_job()
    with pytest.raises(ExhaustedSpaceError):
        gen.create_job()


def test_bayesian_proposals_always_valid():
    space = SearchSpace(
        [LogUniform("lr", 1e-5, 1.0), Choice("c", ("a", "b", "c"))]
    )
    gen = BayesianGenerator(space, seed=3, warmup=3)
    for i in range(15):
        job_id, config = gen.create_job()
        space.validate(config)
        gen.report_final_performance(job_id, float(np.sin(i)))


# -------------------------------------------------------------------- TPE


def test_tpe_warmup_is_random(space):
    from repro.generators.tpe import TPEGenerator

    tpe = TPEGenerator(space, seed=4, warmup=5)
    rand = RandomGenerator(space, seed=4)
    for _ in range(5):
        assert tpe.create_job()[1] == rand.create_job()[1]


def test_tpe_validation(space):
    from repro.generators.tpe import TPEGenerator

    with pytest.raises(ValueError, match="warmup"):
        TPEGenerator(space, warmup=1)
    with pytest.raises(ValueError, match="gamma"):
        TPEGenerator(space, gamma=1.0)
    with pytest.raises(ValueError, match="bandwidth"):
        TPEGenerator(space, bandwidth=0.0)


def test_tpe_outperforms_random_on_smooth_objective():
    from repro.generators.tpe import TPEGenerator

    def objective(config):
        return -((config["x"] - 0.7) ** 2) - (config["y"] - 0.2) ** 2

    def run(generator, budget=50):
        best = -np.inf
        for _ in range(budget):
            job_id, config = generator.create_job()
            value = objective(config)
            generator.report_final_performance(job_id, value)
            best = max(best, value)
        return best

    space = SearchSpace([Uniform("x", 0.0, 1.0), Uniform("y", 0.0, 1.0)])
    tpe_scores = [run(TPEGenerator(space, seed=s, warmup=10)) for s in range(5)]
    random_scores = [run(RandomGenerator(space, seed=s)) for s in range(5)]
    assert np.mean(tpe_scores) > np.mean(random_scores)


def test_tpe_proposals_always_valid():
    from repro.generators.tpe import TPEGenerator

    space = SearchSpace(
        [LogUniform("lr", 1e-5, 1.0), Choice("c", ("a", "b", "c"))]
    )
    gen = TPEGenerator(space, seed=3, warmup=4)
    for i in range(20):
        job_id, config = gen.create_job()
        space.validate(config)
        gen.report_final_performance(job_id, float(np.cos(i)))


def test_tpe_max_configs(space):
    from repro.generators.tpe import TPEGenerator
    from repro.generators.base import ExhaustedSpaceError

    gen = TPEGenerator(space, seed=0, max_configs=3)
    for _ in range(3):
        gen.create_job()
    with pytest.raises(ExhaustedSpaceError):
        gen.create_job()
