"""Token-bucket rate limiting: refill math, per-key isolation."""

from __future__ import annotations

import pytest

from repro.broker import RateLimiter, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_bucket_spends_and_refills():
    clock = FakeClock()
    bucket = TokenBucket(capacity=2, refill_per_second=1.0, clock=clock)
    assert bucket.try_acquire() == (True, 0.0)
    assert bucket.try_acquire() == (True, 0.0)
    granted, retry_after = bucket.try_acquire()
    assert not granted
    assert retry_after == pytest.approx(1.0)
    clock.advance(0.5)
    granted, retry_after = bucket.try_acquire()
    assert not granted
    assert retry_after == pytest.approx(0.5)
    clock.advance(0.5)
    assert bucket.try_acquire() == (True, 0.0)


def test_bucket_caps_at_capacity():
    clock = FakeClock()
    bucket = TokenBucket(capacity=3, refill_per_second=10.0, clock=clock)
    clock.advance(1000.0)
    assert bucket.tokens == pytest.approx(3.0)


def test_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(capacity=0, refill_per_second=1.0)
    with pytest.raises(ValueError):
        TokenBucket(capacity=1, refill_per_second=0.0)


def test_limiter_disabled_by_default():
    limiter = RateLimiter()
    assert not limiter.enabled
    for _ in range(1000):
        assert limiter.check("anyone") == (True, 0.0)


def test_limiter_isolates_keys():
    clock = FakeClock()
    limiter = RateLimiter(rate_per_minute=60.0, burst=1, clock=clock)
    assert limiter.check("alice")[0]
    granted, retry_after = limiter.check("alice")
    assert not granted
    assert retry_after > 0
    # Bob has his own bucket — alice draining hers costs him nothing.
    assert limiter.check("bob")[0]


def test_limiter_default_burst_is_one_minute():
    clock = FakeClock()
    limiter = RateLimiter(rate_per_minute=5.0, clock=clock)
    grants = sum(1 for _ in range(10) if limiter.check("alice")[0])
    assert grants == 5
