"""ResourceBroker: register/plan/commit/release, cross-experiment POP
rebalancing, value-ranked reclaim, deadline pressure, budgets, audit."""

from __future__ import annotations

import pytest

from repro.broker import (
    AdmissionController,
    QueueEntry,
    ResourceBroker,
    SlotPool,
    TenantQuota,
)
from repro.observability import Recorder


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_broker(slots=4, quotas=None, recorder=None, clock=None):
    clock = clock or FakeClock()
    recorder = recorder or Recorder()
    pool = SlotPool(total_slots=slots, clock=clock, recorder=recorder)
    return ResourceBroker(
        pool=pool,
        admission=AdmissionController(quotas=quotas),
        recorder=recorder,
        clock=clock,
    ), clock, recorder


def sync(broker, exp_id):
    """One full plan/commit cycle as the executor would drive it
    (immediate drain — unit tests have no real machines to drain)."""
    broker.plan(exp_id)
    return broker.commit(exp_id)


def audit_kinds(recorder):
    return [record.kind for record in recorder.audit.records]


def test_register_grant_release_cycle():
    broker, _, recorder = make_broker(slots=4)
    broker.register("exp-a", "alice", want=3)
    decision = sync(broker, "exp-a")
    assert decision.target == 3
    assert decision.held == 3
    assert not decision.preempted
    assert broker.release("exp-a", "finished") == 3
    assert broker.pool.allocated == 0
    kinds = audit_kinds(recorder)
    assert "broker_admit" in kinds
    assert "broker_grant" in kinds
    assert "broker_release" in kinds


def test_unlimited_pool_grants_want_and_never_reclaims():
    broker, _, _ = make_broker(slots=None)
    broker.register("exp-a", "alice", want=8)
    broker.register("exp-b", "bob", want=8)
    assert sync(broker, "exp-a").held == 8
    assert sync(broker, "exp-b").held == 8
    # Nothing is scarce, so nothing is ever revoked.
    assert broker.pool.revoked_leases("exp-a") == []
    assert broker.pool.revoked_leases("exp-b") == []


def test_two_experiments_share_bounded_pool():
    broker, _, _ = make_broker(slots=4)
    broker.register("exp-a", "alice", want=4)
    assert sync(broker, "exp-a").held == 4
    broker.register("exp-b", "bob", want=4)
    # Registering B revokes slots from A; A's next sync drains and
    # releases them, then B's sync picks them up.
    a = sync(broker, "exp-a")
    assert a.target < 4
    b = sync(broker, "exp-b")
    assert b.held >= 1
    assert broker.pool.allocated <= 4


def test_reclaim_prefers_low_value_victim():
    broker, _, recorder = make_broker(slots=4)
    broker.register("exp-strong", "alice", want=4)
    sync(broker, "exp-strong")
    broker.report(
        "exp-strong",
        confidences=[0.9, 0.9, 0.8],
        best_confidence=0.9,
        best_ert_seconds=100.0,
    )
    broker.register("exp-weak", "bob", want=4)
    broker.report(
        "exp-weak",
        confidences=[0.05],
        best_confidence=0.05,
        best_ert_seconds=10000.0,
    )
    strong = sync(broker, "exp-strong")
    weak = sync(broker, "exp-weak")
    # The strong experiment keeps the larger share of the pool.
    assert strong.held > weak.held
    assert weak.held >= 1  # one-slot guarantee
    reclaims = [
        record for record in recorder.audit.records
        if record.kind == "broker_reclaim"
    ]
    assert reclaims, "rebalance must audit its reclaim decisions"
    assert all("value" in record.data for record in reclaims)


def test_deadline_pressure_boosts_value():
    broker, clock, _ = make_broker(slots=4)
    broker.register("exp-chill", "alice", want=4)
    broker.report("exp-chill", confidences=[0.5] * 4,
                  best_confidence=0.5, best_ert_seconds=100.0)
    broker.register("exp-rushed", "bob", want=4, deadline_hours=1.0)
    broker.report("exp-rushed", confidences=[0.5] * 4,
                  best_confidence=0.5, best_ert_seconds=100.0)
    clock.advance(3500.0)  # 58 minutes: deadline nearly due
    sync(broker, "exp-chill")
    rushed = sync(broker, "exp-rushed")
    chill = sync(broker, "exp-chill")
    # Same POP state, but deadline pressure tips the pool to bob.
    assert rushed.held > chill.held


def test_budget_exhaustion_squeezes_to_one_slot():
    broker, clock, recorder = make_broker(slots=4)
    broker.register("exp-a", "alice", want=4, budget_slot_hours=1.0)
    assert sync(broker, "exp-a").held == 4
    clock.advance(3600.0)  # 4 slots x 1h = 4 slot-hours >> 1 budgeted
    decision = sync(broker, "exp-a")
    assert decision.target == 1
    assert "broker_budget_exhausted" in audit_kinds(recorder)
    status = broker.status()
    assert status["experiments"][0]["budget_exhausted"] is True


def test_full_preemption_only_for_higher_priority():
    broker, _, recorder = make_broker(slots=2)
    broker.register("exp-a", "alice", want=2, priority=0)
    broker.register("exp-b", "bob", want=2, priority=0)
    sync(broker, "exp-a")
    sync(broker, "exp-b")
    # Two experiments fit two slots: nobody is preempted.
    assert not broker.plan("exp-a").preempted
    assert not broker.plan("exp-b").preempted
    broker.register("exp-vip", "carol", want=2, priority=10)
    plans = {
        exp_id: broker.plan(exp_id) for exp_id in ("exp-a", "exp-b")
    }
    assert sum(1 for p in plans.values() if p.preempted) == 1
    preempts = [
        record for record in recorder.audit.records
        if record.kind == "broker_preempt"
    ]
    assert len(preempts) == 1
    assert preempts[0].data["reason"] == "priority"


def test_claim_next_defers_to_quota_and_capacity():
    broker, _, _ = make_broker(
        slots=2, quotas={"alice": TenantQuota(max_running=1)}
    )

    def entries(extra_queued):
        rows = [
            QueueEntry("exp-run", "alice", 0, 0.0, "running"),
        ]
        rows += [
            QueueEntry(exp_id, tenant, priority, 1.0, "queued")
            for exp_id, tenant, priority in extra_queued
        ]
        return rows

    # Alice at max_running: her queued work waits, bob's dispatches.
    assert broker.claim_next(
        entries([("exp-a2", "alice", 5), ("exp-b1", "bob", 0)])
    ) == "exp-b1"

    # Saturated pool (2 active registrations, 2 slots): equal-priority
    # work is deferred, strictly-higher-priority work is admitted.
    broker.register("exp-x", "carol", want=1, priority=0)
    broker.register("exp-y", "dave", want=1, priority=0)
    assert broker.claim_next(
        entries([("exp-b1", "bob", 0)])
    ) is None
    assert broker.claim_next(
        entries([("exp-b1", "bob", 3)])
    ) == "exp-b1"


def test_release_is_idempotent_and_report_ignores_unknown():
    broker, _, _ = make_broker(slots=2)
    broker.report("ghost", confidences=[0.5])  # no-op, no raise
    assert broker.release("ghost") == 0
    decision = broker.plan("ghost")
    assert decision.target == 0 and decision.held == 0


def test_status_document_shape():
    broker, _, _ = make_broker(slots=2)
    broker.register("exp-a", "alice", want=2, priority=1)
    sync(broker, "exp-a")
    status = broker.status()
    assert status["pool"]["total_slots"] == 2
    exp = status["experiments"][0]
    assert exp["exp_id"] == "exp-a"
    assert exp["held"] == 2
    assert exp["tenant"] == "alice"
    assert "admission" in status


def test_register_validates_want():
    broker, _, _ = make_broker()
    with pytest.raises(ValueError):
        broker.register("exp-a", "alice", want=0)
