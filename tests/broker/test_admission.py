"""Admission control: rate gate, queue depth, quotas, claim order."""

from __future__ import annotations

import pytest

from repro.broker import (
    AdmissionController,
    AdmissionError,
    QueueEntry,
    QueueFull,
    QuotaExceeded,
    RateLimited,
    RateLimiter,
    TenantQuota,
    parse_quota_spec,
)


def entry(exp_id, tenant, priority=0, created_at=0.0, status="queued"):
    return QueueEntry(
        exp_id=exp_id, tenant=tenant, priority=priority,
        created_at=created_at, status=status,
    )


def test_admit_open_by_default():
    controller = AdmissionController()
    controller.admit("anyone", [])  # no exception


def test_rate_limited_maps_to_429_with_retry_after():
    clock_now = [0.0]
    limiter = RateLimiter(
        rate_per_minute=60.0, burst=1, clock=lambda: clock_now[0]
    )
    controller = AdmissionController(rate_limiter=limiter)
    controller.admit("alice", [])
    with pytest.raises(RateLimited) as info:
        controller.admit("alice", [])
    assert info.value.http_status == 429
    assert info.value.retry_after >= 1.0
    assert isinstance(info.value, AdmissionError)


def test_queue_full_maps_to_503():
    controller = AdmissionController(max_queue_depth=2)
    queue = [entry("e1", "alice"), entry("e2", "bob")]
    with pytest.raises(QueueFull) as info:
        controller.admit("carol", queue)
    assert info.value.http_status == 503
    assert info.value.retry_after == 5.0
    # Running entries do not count toward queue depth.
    queue[0] = entry("e1", "alice", status="running")
    controller.admit("carol", queue)


def test_quota_exceeded_on_queued_cap():
    controller = AdmissionController(
        quotas={"alice": TenantQuota(max_running=1, max_queued=1)}
    )
    with pytest.raises(QuotaExceeded) as info:
        controller.admit("alice", [entry("e1", "alice")])
    assert info.value.http_status == 429
    # Other tenants are unaffected.
    controller.admit("bob", [entry("e1", "alice")])


def test_next_runnable_priority_then_fifo():
    controller = AdmissionController()
    queue = [
        entry("low-old", "alice", priority=0, created_at=1.0),
        entry("low-new", "alice", priority=0, created_at=2.0),
        entry("high-late", "bob", priority=5, created_at=9.0),
    ]
    assert controller.next_runnable(queue) == "high-late"
    queue = [e for e in queue if e.exp_id != "high-late"]
    # FIFO within the same priority band.
    assert controller.next_runnable(queue) == "low-old"


def test_next_runnable_skips_tenant_at_max_running():
    controller = AdmissionController(
        quotas={"alice": TenantQuota(max_running=1)}
    )
    queue = [
        entry("running", "alice", priority=9, status="running"),
        entry("blocked", "alice", priority=9, created_at=1.0),
        entry("other", "bob", priority=0, created_at=2.0),
    ]
    # Alice is at quota, so her high-priority entry waits (not
    # cancelled) and bob's lower-priority entry dispatches.
    assert controller.next_runnable(queue) == "other"
    queue[0] = entry("running", "alice", priority=9, status="completed")
    assert controller.next_runnable(queue) == "blocked"


def test_next_runnable_empty_queue():
    assert AdmissionController().next_runnable([]) is None


def test_tenant_counts():
    controller = AdmissionController()
    counts = controller.tenant_counts([
        entry("e1", "alice"),
        entry("e2", "alice", status="running"),
        entry("e3", "bob"),
    ])
    assert counts == {
        "alice": {"queued": 1, "running": 1},
        "bob": {"queued": 1, "running": 0},
    }


def test_parse_quota_spec():
    quotas = parse_quota_spec("alice=2,bob=1:4, *=3")
    assert quotas["alice"] == TenantQuota(max_running=2, max_queued=None)
    assert quotas["bob"] == TenantQuota(max_running=1, max_queued=4)
    assert quotas["*"] == TenantQuota(max_running=3, max_queued=None)


@pytest.mark.parametrize("bad", ["alice", "alice=x", "alice=1:y"])
def test_parse_quota_spec_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_quota_spec(bad)


def test_to_dict_round_trips_config():
    controller = AdmissionController(
        quotas={"alice": TenantQuota(max_running=2)},
        default_quota=TenantQuota(max_running=4, max_queued=8),
        max_queue_depth=16,
        rate_limiter=RateLimiter(rate_per_minute=30.0),
    )
    doc = controller.to_dict()
    assert doc["max_queue_depth"] == 16
    assert doc["default_quota"] == {"max_running": 4, "max_queued": 8}
    assert doc["quotas"]["alice"]["max_running"] == 2
    assert doc["rate_per_minute"] == 30.0
