"""Slot-pool lease discipline: grant, release, revoke, gauges."""

from __future__ import annotations

import pytest

from repro.broker import SlotPool
from repro.observability import Recorder


def test_bounded_pool_never_oversubscribes():
    pool = SlotPool(total_slots=3)
    a = pool.acquire("exp-a", "alice", 2)
    b = pool.acquire("exp-b", "bob", 5)
    assert len(a) == 2
    assert len(b) == 1  # only one slot left
    assert pool.allocated == 3
    assert pool.free == 0
    assert pool.acquire("exp-c", "carol", 1) == []


def test_unlimited_pool_grants_everything():
    pool = SlotPool()
    leases = pool.acquire("exp-a", "alice", 50)
    assert len(leases) == 50
    assert pool.free is None
    assert pool.total_slots is None


def test_release_returns_slots():
    pool = SlotPool(total_slots=2)
    leases = pool.acquire("exp-a", "alice", 2)
    assert pool.release([leases[0].lease_id]) == 1
    assert pool.allocated == 1
    # Unknown ids are ignored (release can race a revoke ack).
    assert pool.release(["lease-nope", leases[0].lease_id]) == 0
    assert pool.release_experiment("exp-a") == 1
    assert pool.allocated == 0


def test_revoked_slots_stay_allocated_until_released():
    pool = SlotPool(total_slots=2)
    pool.acquire("exp-a", "alice", 2)
    marked = pool.revoke("exp-a", 1)
    assert len(marked) == 1
    assert marked[0].revoked
    # The revoked-not-yet-released slot still counts as allocated:
    # nobody else can steal it mid-reclaim.
    assert pool.allocated == 2
    assert pool.acquire("exp-b", "bob", 1) == []
    assert pool.held("exp-a") == 2
    assert pool.held("exp-a", include_revoked=False) == 1
    pool.release(lease.lease_id for lease in pool.revoked_leases("exp-a"))
    assert pool.allocated == 1
    assert len(pool.acquire("exp-b", "bob", 1)) == 1


def test_revoke_newest_first():
    clock = iter(range(100))
    pool = SlotPool(total_slots=3, clock=lambda: float(next(clock)))
    leases = pool.acquire("exp-a", "alice", 3)
    marked = pool.revoke("exp-a", 2)
    marked_ids = {lease.lease_id for lease in marked}
    # The oldest lease survives.
    assert leases[0].lease_id not in marked_ids
    assert marked_ids == {leases[1].lease_id, leases[2].lease_id}


def test_holdings_excludes_revoked():
    pool = SlotPool(total_slots=4)
    pool.acquire("exp-a", "alice", 3)
    pool.acquire("exp-b", "bob", 1)
    pool.revoke("exp-a", 2)
    assert pool.holdings() == {"exp-a": 1, "exp-b": 1}


def test_gauges_track_allocation():
    recorder = Recorder()
    pool = SlotPool(total_slots=4, recorder=recorder)
    registry = recorder.metrics
    assert registry.gauge("broker_slots_total").value() == 4.0
    leases = pool.acquire("exp-a", "alice", 3)
    assert registry.gauge("broker_slots_allocated").value() == 3.0
    held = registry.gauge("broker_tenant_slots_held")
    assert held.value(tenant="alice") == 3.0
    pool.release([lease.lease_id for lease in leases])
    assert registry.gauge("broker_slots_allocated").value() == 0.0
    # Tenant gauge zeroes instead of freezing at its last value.
    assert held.value(tenant="alice") == 0.0


def test_invalid_arguments():
    with pytest.raises(ValueError):
        SlotPool(total_slots=0)
    pool = SlotPool(total_slots=1)
    with pytest.raises(ValueError):
        pool.acquire("exp-a", "alice", -1)
    with pytest.raises(ValueError):
        pool.revoke("exp-a", -1)


def test_to_dict_snapshot():
    pool = SlotPool(total_slots=2)
    pool.acquire("exp-a", "alice", 1)
    doc = pool.to_dict()
    assert doc["total_slots"] == 2
    assert doc["allocated"] == 1
    assert doc["free"] == 1
    assert doc["leases"][0]["exp_id"] == "exp-a"
    assert doc["leases"][0]["tenant"] == "alice"


# --------------------------------------------------------------- resize


def test_resize_grow_takes_effect_immediately():
    pool = SlotPool(total_slots=2)
    pool.acquire("exp-a", "alice", 2)
    assert pool.resize(4) == 4
    assert pool.total_slots == 4
    assert pool.target_slots == 4
    assert not pool.shrink_pending
    assert len(pool.acquire("exp-b", "bob", 2)) == 2


def test_resize_shrink_never_strands_outstanding_leases():
    pool = SlotPool(total_slots=4)
    leases = pool.acquire("exp-a", "alice", 4)
    # Shrinking below the live allocation floors at it: the
    # allocated <= total invariant never breaks.
    assert pool.resize(2) == 4
    assert pool.total_slots == 4
    assert pool.target_slots == 2
    assert pool.shrink_pending
    assert pool.held("exp-a") == 4  # nobody's lease vanished
    # Capacity steps down as holders release...
    pool.release([leases[0].lease_id])
    assert pool.total_slots == 3
    assert pool.shrink_pending
    pool.release([leases[1].lease_id])
    # ...and settles at the target once enough leases are back.
    assert pool.total_slots == 2
    assert not pool.shrink_pending
    pool.release([leases[2].lease_id])
    assert pool.total_slots == 2  # does not undershoot
    assert pool.allocated == 1


def test_resize_shrink_blocks_new_grants_beyond_target():
    pool = SlotPool(total_slots=3)
    pool.acquire("exp-a", "alice", 3)
    pool.resize(1)
    assert pool.acquire("exp-b", "bob", 1) == []


def test_resize_grow_cancels_pending_shrink():
    pool = SlotPool(total_slots=4)
    leases = pool.acquire("exp-a", "alice", 4)
    pool.resize(2)
    assert pool.shrink_pending
    assert pool.resize(6) == 6
    assert not pool.shrink_pending
    pool.release([lease.lease_id for lease in leases])
    assert pool.total_slots == 6


def test_resize_to_none_lifts_cap_and_clears_pending():
    pool = SlotPool(total_slots=2)
    pool.acquire("exp-a", "alice", 2)
    pool.resize(1)
    assert pool.resize(None) is None
    assert pool.total_slots is None
    assert pool.target_slots is None
    assert not pool.shrink_pending
    assert len(pool.acquire("exp-b", "bob", 10)) == 10


def test_resize_rejects_nonpositive_totals():
    pool = SlotPool(total_slots=2)
    with pytest.raises(ValueError, match=">= 1"):
        pool.resize(0)


def test_resize_updates_total_gauge():
    recorder = Recorder()
    pool = SlotPool(total_slots=2, recorder=recorder)
    pool.resize(5)
    assert recorder.metrics.get("broker_slots_total").value() == 5.0


def test_release_experiment_settles_pending_shrink():
    pool = SlotPool(total_slots=4)
    pool.acquire("exp-a", "alice", 4)
    pool.resize(1)
    pool.release_experiment("exp-a")
    assert pool.total_slots == 1
    assert not pool.shrink_pending
