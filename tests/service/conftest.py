"""Shared fixtures for the experiment-service tests."""

from __future__ import annotations

import pytest

from repro.service.store import RunStore
from repro.service.submission import Submission


@pytest.fixture()
def store(tmp_path) -> RunStore:
    return RunStore(tmp_path / "runs")


@pytest.fixture()
def small_submission() -> Submission:
    """A sim experiment small enough for test-speed end-to-end runs."""
    return Submission(
        workload="cifar10",
        policy="bandit",
        configs=6,
        machines=2,
        seed=1,
        checkpoint_every=5,
    )
