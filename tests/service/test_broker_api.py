"""Multi-tenant broker behaviour through the daemon's HTTP API:
quota-bounded concurrency, priority/FIFO dispatch, 429 + Retry-After
with client backoff, queue-depth backpressure, and preempt-to-resume
determinism."""

from __future__ import annotations

import time

import pytest

from repro.service import executor
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ExperimentService
from repro.service.store import COMPLETED, RunStore
from repro.service.submission import Submission


def small_payload(tenant="default", priority=0, seed=1, **overrides):
    payload = {
        "workload": "cifar10",
        "policy": "bandit",
        "configs": 6,
        "machines": 2,
        "seed": seed,
        "checkpoint_every": 5,
        "tenant": tenant,
        "priority": priority,
    }
    payload.update(overrides)
    return payload


def wait_all(client, ids, timeout=300):
    return {
        exp_id: client.watch(exp_id, poll_seconds=0.1, timeout=timeout)
        for exp_id in ids
    }


def wait_running(service, exp_id, timeout=60):
    deadline = time.monotonic() + timeout
    while service.store.get(exp_id).status != "running":
        assert time.monotonic() < deadline, f"{exp_id} never ran"
        time.sleep(0.01)


def wait_terminal(service, exp_id, timeout=300):
    """Unlike ``client.watch`` this polls *through* the transient
    INTERRUPTED status a broker preemption parks a run at."""
    deadline = time.monotonic() + timeout
    while True:
        record = service.store.get(exp_id)
        if record.status in ("completed", "failed", "cancelled"):
            return record
        assert time.monotonic() < deadline, (
            f"{exp_id} stuck at {record.status}"
        )
        time.sleep(0.05)


def running_by_tenant(service):
    counts = {}
    for row in service.store.queue_entries():
        if row["status"] == "running":
            counts[row["tenant"]] = counts.get(row["tenant"], 0) + 1
    return counts


def test_concurrent_tenants_respect_running_quota(tmp_path):
    """Two tenants, three workers, a 1-running quota each: the daemon
    never runs two of one tenant's experiments at once, yet everything
    completes."""
    service = ExperimentService(
        tmp_path / "runs", port=0, workers=3,
        tenant_quotas="alice=1,bob=1",
    )
    service.start()
    try:
        client = ServiceClient(service.url)
        ids = [
            client.submit(small_payload(tenant=tenant, seed=seed))["id"]
            for tenant, seed in [
                ("alice", 1), ("alice", 2), ("bob", 3), ("bob", 4),
            ]
        ]
        deadline = time.monotonic() + 300
        observed_parallel = False
        while True:
            counts = running_by_tenant(service)
            assert all(count <= 1 for count in counts.values()), counts
            if len([c for c in counts.values() if c == 1]) == 2:
                observed_parallel = True
            records = [service.store.get(exp_id) for exp_id in ids]
            if all(r.status == COMPLETED for r in records):
                break
            assert time.monotonic() < deadline, "experiments stalled"
            time.sleep(0.02)
        # The quota throttled within tenants, not across them.
        assert observed_parallel, "alice and bob never ran concurrently"
    finally:
        service.stop()


def test_dispatch_is_priority_then_fifo(tmp_path):
    service = ExperimentService(tmp_path / "runs", port=0, workers=1)
    service.start()
    try:
        client = ServiceClient(service.url)
        blocker = client.submit(small_payload(seed=9))["id"]
        wait_running(service, blocker)
        # While the single worker is busy, queue three more: the
        # high-priority one jumps the line, equal priorities stay FIFO.
        a = client.submit(small_payload(priority=0, seed=1))["id"]
        b = client.submit(small_payload(priority=5, seed=2))["id"]
        c = client.submit(small_payload(priority=0, seed=3))["id"]
        finals = wait_all(client, [blocker, a, b, c])
        assert all(f["status"] == "completed" for f in finals.values())
        started = {exp_id: finals[exp_id]["started_at"] for exp_id in finals}
        assert started[blocker] < started[b] < started[a] < started[c]
    finally:
        service.stop()


def test_rate_limited_submission_gets_429_and_client_retries(tmp_path):
    service = ExperimentService(
        tmp_path / "runs", port=0, workers=1,
        rate_limit=600.0,  # 10 tokens/second...
        rate_burst=1,      # ...but a burst of one: back-to-back trips it
    )
    service.start()
    try:
        # A non-retrying client observes the raw 429 + Retry-After.
        strict = ServiceClient(service.url, max_retries=0)
        strict.submit(small_payload(seed=1))
        with pytest.raises(ServiceError) as info:
            strict.submit(small_payload(seed=2))
        assert info.value.status == 429
        assert info.value.retry_after is not None
        assert info.value.retry_after >= 1.0

        # The default client backs off (honouring Retry-After) and
        # succeeds on a later attempt.
        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            time.sleep(seconds)

        patient = ServiceClient(
            service.url, max_retries=4, sleep=fake_sleep
        )
        record = patient.submit(small_payload(seed=3))
        assert record["status"] == "queued"
        assert patient.retries >= 1
        assert sleeps and sleeps[0] >= 1.0  # floored at Retry-After
    finally:
        service.stop()


def test_queue_depth_backpressure_is_503(tmp_path):
    service = ExperimentService(
        tmp_path / "runs", port=0, workers=1, max_queue_depth=1,
    )
    service.start()
    try:
        client = ServiceClient(service.url, max_retries=0)
        blocker = client.submit(small_payload(seed=9))["id"]
        wait_running(service, blocker)
        client.submit(small_payload(seed=1))  # fills the queue
        with pytest.raises(ServiceError) as info:
            client.submit(small_payload(seed=2))
        assert info.value.status == 503
        assert info.value.retry_after == pytest.approx(5.0)
    finally:
        service.stop()


def test_preempted_experiment_resumes_to_identical_result(tmp_path):
    """A higher-priority arrival fully preempts the only slot's holder;
    the victim auto-requeues, resumes, and still produces the same
    result as an uninterrupted run of the same submission."""
    victim_payload = small_payload(
        tenant="alice", seed=1, machines=1, configs=12,
        checkpoint_every=2,
    )
    service = ExperimentService(
        tmp_path / "runs", port=0, workers=2, slots=1,
    )
    service.start()
    try:
        client = ServiceClient(service.url)
        victim = client.submit(victim_payload)["id"]
        wait_running(service, victim)
        vip = client.submit(small_payload(
            tenant="bob", priority=10, seed=2, machines=1, configs=4,
            checkpoint_every=2,
        ))["id"]
        assert wait_terminal(service, vip).status == COMPLETED
        victim_record = wait_terminal(service, victim)
        assert victim_record.status == COMPLETED
        preempts = [
            record for record in service._broker_recorder.audit.records
            if record.kind == "broker_preempt"
        ]
        assert preempts, "the broker never preempted the victim"
        assert preempts[0].data["exp_id"] == victim
        assert preempts[0].data["reason"] == "priority"
        kinds = [e["kind"] for e in service.store.read_events(victim)]
        assert "resumed" in kinds
        victim_result = victim_record.result
    finally:
        service.stop()

    # Uninterrupted baseline: same submission, fresh store, no broker.
    baseline_store = RunStore(tmp_path / "baseline")
    record = baseline_store.submit(Submission.from_dict(victim_payload))
    baseline = executor.execute(baseline_store, record.id)
    assert baseline.status == COMPLETED
    for key in (
        "best_job_id",
        "best_metric",
        "epochs_trained",
        "finished_at",
        "reached_target",
    ):
        assert victim_result[key] == baseline.result[key], key
    baseline_store.close()


def test_broker_status_endpoint(tmp_path):
    service = ExperimentService(
        tmp_path / "runs", port=0, workers=1, slots=4,
        tenant_quotas="alice=2",
    )
    service.start()
    try:
        client = ServiceClient(service.url)
        status = client.broker_status()
        assert status["pool"]["total_slots"] == 4
        assert status["admission"]["quotas"]["alice"]["max_running"] == 2
        assert status["tenants"] == {}
        exp_id = client.submit(small_payload(tenant="alice"))["id"]
        status = client.broker_status()
        assert status["tenants"]["alice"]["queued"] \
            + status["tenants"]["alice"]["running"] == 1
        client.watch(exp_id, poll_seconds=0.1, timeout=300)
    finally:
        service.stop()
