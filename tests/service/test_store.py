"""Tests for the durable run store (SQLite index + JSONL journal)."""

from __future__ import annotations

import pytest

from repro.service.store import (
    CANCELLED,
    COMPLETED,
    FAILED,
    INTERRUPTED,
    QUEUED,
    RUNNING,
    RunStore,
)
from repro.service.submission import Submission


def test_submit_creates_queued_record_and_journal(store, small_submission):
    record = store.submit(small_submission)
    assert record.status == QUEUED
    assert record.submission["workload"] == "cifar10"
    fetched = store.get(record.id)
    assert fetched is not None
    assert fetched.status == QUEUED
    assert fetched.submission == small_submission.to_dict()
    events = store.read_events(record.id)
    assert events[0]["kind"] == "submitted"
    assert events[0]["submission"]["policy"] == "bandit"


def test_submit_accepts_plain_dict(store):
    record = store.submit({"workload": "mlp", "configs": 3})
    assert store.get(record.id).submission["workload"] == "mlp"


def test_submit_rejects_unknown_fields(store):
    with pytest.raises(ValueError, match="unknown submission fields"):
        store.submit({"workloadd": "mlp"})


def test_submission_rejects_unknown_component_names():
    with pytest.raises(ValueError, match="unknown workload"):
        Submission(workload="nonsense")
    with pytest.raises(ValueError, match="unknown policy"):
        Submission(policy="nonsense")


def test_claim_next_queued_is_fifo_and_exclusive(store, small_submission):
    first = store.submit(small_submission)
    second = store.submit(small_submission)
    claimed = store.claim_next_queued()
    assert claimed.id == first.id
    assert claimed.status == RUNNING
    assert store.claim_next_queued().id == second.id
    assert store.claim_next_queued() is None


def test_mark_finished_records_result(store, small_submission):
    record = store.submit(small_submission)
    store.claim_next_queued()
    store.mark_finished(record.id, COMPLETED, result={"epochs_trained": 7})
    final = store.get(record.id)
    assert final.status == COMPLETED
    assert final.result == {"epochs_trained": 7}
    assert final.finished_at is not None
    kinds = [event["kind"] for event in store.read_events(record.id)]
    assert kinds[-2:] == ["status", "result"] or "result" in kinds


def test_mark_finished_rejects_non_terminal_status(store, small_submission):
    record = store.submit(small_submission)
    with pytest.raises(ValueError, match="not a terminal status"):
        store.mark_finished(record.id, RUNNING)


def test_cancel_queued_is_immediate(store, small_submission):
    record = store.submit(small_submission)
    cancelled = store.request_cancel(record.id)
    assert cancelled.status == CANCELLED
    # no worker can claim it afterwards
    assert store.claim_next_queued() is None


def test_cancel_running_sets_flag_only(store, small_submission):
    record = store.submit(small_submission)
    store.claim_next_queued()
    assert not store.cancel_requested(record.id)
    updated = store.request_cancel(record.id)
    assert updated.status == RUNNING
    assert store.cancel_requested(record.id)


def test_cancel_terminal_raises(store, small_submission):
    record = store.submit(small_submission)
    store.claim_next_queued()
    store.mark_finished(record.id, FAILED, error="boom")
    with pytest.raises(ValueError, match="already failed"):
        store.request_cancel(record.id)


def test_cancel_unknown_raises_keyerror(store):
    with pytest.raises(KeyError):
        store.request_cancel("exp-missing")


def test_checkpoint_roundtrip_and_journal(store, small_submission):
    record = store.submit(small_submission)
    store.save_checkpoint(record.id, {"epochs_trained": 5})
    store.save_checkpoint(record.id, {"epochs_trained": 11})
    assert store.latest_checkpoint(record.id) == {"epochs_trained": 11}
    states = [
        event["state"]["epochs_trained"]
        for event in store.read_events(record.id)
        if event["kind"] == "checkpoint"
    ]
    assert states == [5, 11]


def test_read_events_offset(store, small_submission):
    record = store.submit(small_submission)
    store.append_event(record.id, "custom", n=1)
    store.append_event(record.id, "custom", n=2)
    all_events = store.read_events(record.id)
    assert store.read_events(record.id, offset=len(all_events) - 1)[0]["n"] == 2


def test_minted_configs_roundtrip(store, small_submission):
    record = store.submit(small_submission)
    assert store.minted_configs(record.id) is None
    configs = [{"lr": 0.1}, {"lr": 0.2}]
    store.record_configs(record.id, configs)
    assert store.minted_configs(record.id) == configs


def test_recover_interrupted_flips_stale_running(store, small_submission):
    running = store.submit(small_submission)
    queued = store.submit(small_submission)
    store.claim_next_queued()
    assert store.recover_interrupted() == [running.id]
    assert store.get(running.id).status == INTERRUPTED
    assert store.get(queued.id).status == QUEUED
    # idempotent
    assert store.recover_interrupted() == []


def test_store_persists_across_reopen(tmp_path, small_submission):
    first = RunStore(tmp_path / "runs")
    record = first.submit(small_submission)
    first.save_checkpoint(record.id, {"epochs_trained": 3})
    first.close()
    second = RunStore(tmp_path / "runs")
    reloaded = second.get(record.id)
    assert reloaded is not None
    assert reloaded.checkpoint == {"epochs_trained": 3}
    assert [e["kind"] for e in second.read_events(record.id)][0] == "submitted"


def test_journal_exporter_wraps_audit_events(store, small_submission):
    record = store.submit(small_submission)
    exporter = store.journal_exporter(record.id)
    exporter.export({"kind": "sap_decision", "job_id": "job-0001"})
    assert exporter.events_written == 1
    audit = [
        event for event in store.read_events(record.id)
        if event["kind"] == "audit"
    ]
    assert audit[0]["record"]["kind"] == "sap_decision"
