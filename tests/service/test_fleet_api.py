"""The daemon's elastic-fleet surface: constructor wiring for
``--autoscale``/``--spot-fraction``, the ``revoke_spot`` command path,
and the ``GET /fleet`` / ``POST /fleet/revoke`` HTTP routes."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.autoscale import FleetControl
from repro.service import ExperimentService, ServiceClient
from repro.service.client import ServiceError


# ----------------------------------------------------------- constructor


def test_autoscale_bounds_validated(tmp_path):
    with pytest.raises(ValueError, match="autoscale bounds"):
        ExperimentService(tmp_path / "runs", autoscale=(0, 4))
    with pytest.raises(ValueError, match="autoscale bounds"):
        ExperimentService(tmp_path / "runs", autoscale=(4, 2))


def test_autoscale_max_must_match_cluster_workers(tmp_path):
    with pytest.raises(ValueError, match="cluster_workers"):
        ExperimentService(
            tmp_path / "runs", autoscale=(1, 4), cluster_workers=2
        )


def test_autoscale_defaults_workers_and_pool_floor(tmp_path):
    service = ExperimentService(tmp_path / "runs", autoscale=(2, 4))
    # MAX becomes the per-run worker count; the shared pool starts at
    # MIN and the autoscaler grows it under pressure.
    assert service.cluster_workers == 4
    assert service.broker.pool.total_slots == 2
    assert service._pool_autoscaler is not None
    assert service._fleet_template is not None


def test_explicit_slots_win_over_autoscale_floor(tmp_path):
    service = ExperimentService(
        tmp_path / "runs", autoscale=(1, 4), slots=3
    )
    assert service.broker.pool.total_slots == 3


def test_spot_fraction_validated_and_enables_fleet(tmp_path):
    with pytest.raises(ValueError, match="spot_fraction"):
        ExperimentService(tmp_path / "runs", spot_fraction=1.5)
    service = ExperimentService(
        tmp_path / "runs", cluster_workers=2, spot_fraction=0.5
    )
    # Spot-only mode still builds the fleet template (costing +
    # revocation), just without a pool autoscaler.
    assert service._fleet_template is not None
    assert service._fleet_template.spot_fraction == 0.5
    assert service._pool_autoscaler is None


def test_plain_service_has_no_fleet_machinery(tmp_path):
    service = ExperimentService(tmp_path / "runs")
    assert service._fleet_template is None
    assert service._pool_autoscaler is None
    assert service.fleet_status() == {}


# --------------------------------------------------------- revoke_spot()


def test_revoke_with_no_live_fleet_is_an_error(tmp_path):
    service = ExperimentService(tmp_path / "runs")
    with pytest.raises(ValueError, match="0 fleet"):
        service.revoke_spot({})


def test_revoke_unknown_experiment_is_key_error(tmp_path):
    service = ExperimentService(tmp_path / "runs")
    with pytest.raises(KeyError, match="exp-missing"):
        service.revoke_spot({"experiment": "exp-missing"})


def test_revoke_rejects_non_object_body(tmp_path):
    service = ExperimentService(tmp_path / "runs")
    with pytest.raises(ValueError, match="JSON object"):
        service.revoke_spot(["not", "a", "dict"])


def test_revoke_queues_notice_on_named_fleet(tmp_path):
    service = ExperimentService(tmp_path / "runs")
    control = FleetControl()
    service._fleets["exp-1"] = control
    record = service.revoke_spot(
        {"experiment": "exp-1", "machine_id": "machine-03", "grace": 5}
    )
    assert record == {
        "experiment": "exp-1",
        "machine_id": "machine-03",
        "grace": 5,
        "queued": True,
    }
    notices = control.drain_revocations()
    assert len(notices) == 1
    assert notices[0].machine_id == "machine-03"
    assert notices[0].grace == pytest.approx(5.0)


def test_revoke_defaults_to_the_only_live_fleet(tmp_path):
    service = ExperimentService(tmp_path / "runs")
    control = FleetControl()
    service._fleets["exp-solo"] = control
    record = service.revoke_spot({})
    assert record["experiment"] == "exp-solo"
    assert record["queued"] is True
    # Runtime picks the doomed worker when none is named.
    assert control.drain_revocations()[0].machine_id is None


def test_revoke_requires_experiment_when_ambiguous(tmp_path):
    service = ExperimentService(tmp_path / "runs")
    service._fleets["exp-1"] = FleetControl()
    service._fleets["exp-2"] = FleetControl()
    with pytest.raises(ValueError, match="2 fleet"):
        service.revoke_spot({})


def test_fleet_status_mirrors_published_snapshots(tmp_path):
    service = ExperimentService(tmp_path / "runs")
    control = FleetControl()
    service._fleets["exp-1"] = control
    control.publish({"workers_up": {"on_demand": 3, "spot": 1}})
    status = service.fleet_status()
    assert status["exp-1"]["workers_up"] == {"on_demand": 3, "spot": 1}


# ------------------------------------------------------------ HTTP layer


@pytest.fixture()
def live_service(tmp_path):
    service = ExperimentService(tmp_path / "runs", port=0, workers=1)
    service.start()
    try:
        yield service
    finally:
        service.stop()


@pytest.fixture()
def client(live_service):
    return ServiceClient(live_service.url)


def test_get_fleet_route(live_service, client):
    assert client._request_json("GET", "/fleet") == {"fleets": {}}
    control = FleetControl()
    live_service._fleets["exp-9"] = control
    control.publish({"spent_dollars": 1.25})
    body = client._request_json("GET", "/fleet")
    assert body["fleets"]["exp-9"]["spent_dollars"] == 1.25


def test_post_revoke_route_happy_path(live_service, client):
    control = FleetControl()
    live_service._fleets["exp-9"] = control
    record = client._request_json(
        "POST", "/fleet/revoke",
        {"experiment": "exp-9", "grace": 2.5},
    )
    assert record["queued"] is True
    assert record["experiment"] == "exp-9"
    assert control.drain_revocations()[0].grace == pytest.approx(2.5)


def test_post_revoke_unknown_experiment_404(live_service, client):
    with pytest.raises(ServiceError) as excinfo:
        client._request_json(
            "POST", "/fleet/revoke", {"experiment": "exp-missing"}
        )
    assert excinfo.value.status == 404


def test_post_revoke_bad_payload_400(live_service, client):
    live_service._fleets["exp-9"] = FleetControl()
    with pytest.raises(ServiceError) as excinfo:
        client._request_json(
            "POST", "/fleet/revoke",
            {"experiment": "exp-9", "grace": "soonish"},
        )
    assert excinfo.value.status == 400


def test_serve_exits_gracefully_on_sigterm(tmp_path):
    # CI smoke scripts stop the daemon with `kill -TERM`: background
    # jobs of non-interactive shells have SIGINT ignored, so SIGTERM
    # is the only reliable scripted shutdown.  An elastic daemon must
    # exit promptly too (pool autoscaler + cost exporter running).
    src = str(Path(__file__).resolve().parents[2] / "src")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve",
         "--root", str(tmp_path / "runs"), "--port", "0",
         "--workers", "1", "--cluster-workers", "2",
         "--autoscale", "1:2", "--spot-fraction", "0.5"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": src},
    )
    try:
        deadline = time.time() + 30
        for line in proc.stdout:
            if "listening" in line:
                break
            assert time.time() < deadline, "daemon never came up"
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def test_queue_depth_is_slot_denominated(tmp_path):
    # The autoscaler's demand signal counts unmet *slots*: a queued
    # 4-machine run wants all 4; a running one wants what the pool has
    # not granted yet.  (Counting experiments starves wide runs.)
    service = ExperimentService(tmp_path / "runs", autoscale=(1, 4))
    assert service._admission_queue_depth() == 0
    service.store.submit({"workload": "cifar10", "machines": 4})
    assert service._admission_queue_depth() == 4
    record = service.store.submit({"workload": "cifar10", "machines": 3})
    service.store.mark_running(record.id)
    service.broker.pool.resize(4)
    service.broker.pool.acquire(record.id, "default", 1)
    # queued 4 + (3 wanted - 1 held) running = 6 unmet slots.
    assert service._admission_queue_depth() == 6
