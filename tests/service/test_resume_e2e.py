"""End-to-end resume: kill an experiment mid-run, resume it, and check
the final result matches an uninterrupted run with the same seeds.

This is the acceptance test for the service's durability story.  The
driver subprocess hard-exits (``os._exit``) from inside a checkpoint
hook — no cleanup, no atexit — leaving a RUNNING row and a partially
written journal behind, exactly like a daemon crash.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.service import executor
from repro.service.store import COMPLETED, RunStore

DRIVER = """\
import os
import sys

from repro.service import executor
from repro.service.store import RunStore
from repro.service.submission import Submission

store = RunStore(sys.argv[1])
record = store.submit(Submission(
    workload="cifar10",
    policy="bandit",
    configs=6,
    machines=2,
    seed=1,
    checkpoint_every=5,
))
print(record.id, flush=True)

seen = {"checkpoints": 0}

def die_after_two(state):
    seen["checkpoints"] += 1
    if seen["checkpoints"] >= 2:
        os._exit(23)

executor.execute(store, record.id, on_checkpoint=die_after_two)
"""


def _src_path() -> str:
    return str(Path(__file__).resolve().parents[2] / "src")


def test_killed_experiment_resumes_to_identical_result(tmp_path):
    driver = tmp_path / "driver.py"
    driver.write_text(DRIVER)
    root = tmp_path / "runs"

    proc = subprocess.run(
        [sys.executable, str(driver), str(root)],
        capture_output=True,
        text=True,
        timeout=300,
        env={**os.environ, "PYTHONPATH": _src_path()},
    )
    assert proc.returncode == 23, proc.stderr
    exp_id = proc.stdout.strip().splitlines()[-1]

    # The crash left a stale RUNNING row with real progress behind it.
    store = RunStore(root)
    crashed = store.get(exp_id)
    assert crashed.status == "running"
    assert crashed.checkpoint["epochs_trained"] > 0
    assert store.minted_configs(exp_id) is not None

    assert store.recover_interrupted() == [exp_id]
    resumed = executor.resume(store, exp_id)
    assert resumed.status == COMPLETED

    # Uninterrupted baseline: same submission, fresh store.
    baseline_store = RunStore(tmp_path / "baseline")
    baseline_rec = baseline_store.submit(crashed.submission)
    baseline = executor.execute(baseline_store, baseline_rec.id)

    # Identical outcome: same winner, same configuration, same totals.
    for key in (
        "best_job_id",
        "best_metric",
        "epochs_trained",
        "finished_at",
        "reached_target",
    ):
        assert resumed.result[key] == baseline.result[key], key
    assert (
        store.minted_configs(exp_id)
        == baseline_store.minted_configs(baseline_rec.id)
    )
    best_idx = int(resumed.result["best_job_id"].split("-")[1])
    assert (
        store.minted_configs(exp_id)[best_idx]
        == baseline_store.minted_configs(baseline_rec.id)[best_idx]
    )

    # The journal records the recovery point.
    kinds = [event["kind"] for event in store.read_events(exp_id)]
    assert "resumed" in kinds
