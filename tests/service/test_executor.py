"""Tests for the experiment executor (run, checkpoint, cancel, resume)."""

from __future__ import annotations

import threading

import pytest

from repro.service import executor
from repro.service.store import (
    CANCELLED,
    COMPLETED,
    FAILED,
    RunStore,
)
from repro.service.submission import Submission


def test_execute_completes_and_persists_everything(store, small_submission):
    record = store.submit(small_submission)
    final = executor.execute(store, record.id)
    assert final.status == COMPLETED
    assert final.result is not None
    assert final.result["epochs_trained"] > 0
    assert final.result["policy"] == "bandit"
    # progress checkpoints were persisted along the way
    assert final.checkpoint is not None
    assert final.checkpoint["epochs_trained"] > 0
    assert set(final.checkpoint["jobs"]) == {
        f"job-{i:04d}" for i in range(small_submission.configs)
    }
    kinds = {event["kind"] for event in store.read_events(record.id)}
    assert {"submitted", "configs", "checkpoint", "audit", "result"} <= kinds
    # the audit trail carries real scheduler decisions
    audit_kinds = {
        event["record"]["kind"]
        for event in store.read_events(record.id)
        if event["kind"] == "audit"
    }
    assert "lifecycle" in audit_kinds


def test_execute_unknown_id(store):
    with pytest.raises(KeyError):
        executor.execute(store, "exp-missing")


def test_execute_rejects_terminal_experiment(store, small_submission):
    record = store.submit(small_submission)
    store.claim_next_queued()
    store.mark_finished(record.id, COMPLETED, result={})
    with pytest.raises(ValueError, match="only queued/running"):
        executor.execute(store, record.id)


def test_execute_marks_failed_on_error(store, monkeypatch):
    record = store.submit(Submission(workload="cifar10", configs=2))

    def boom(*args, **kwargs):
        raise RuntimeError("synthetic failure")

    monkeypatch.setattr(executor, "_run_sim", boom)
    with pytest.raises(RuntimeError, match="synthetic failure"):
        executor.execute(store, record.id)
    final = store.get(record.id)
    assert final.status == FAILED
    assert "synthetic failure" in final.error


def test_cancellation_mid_run_yields_partial_result(store):
    """Cancel lands between checkpoints; the run stops with a partial
    result under CANCELLED — the path the daemon's DELETE endpoint uses."""
    submission = Submission(
        workload="cifar10",
        policy="default",
        configs=12,
        machines=2,
        stop_on_target=False,
        checkpoint_every=1,
    )
    record = store.submit(submission)
    first_checkpoint = threading.Event()
    proceed = threading.Event()

    def on_checkpoint(state):
        first_checkpoint.set()
        proceed.wait(timeout=30)

    worker = threading.Thread(
        target=lambda: executor.execute(
            store, record.id,
            on_checkpoint=on_checkpoint,
            poll_wall_seconds=0.0,
        )
    )
    worker.start()
    assert first_checkpoint.wait(timeout=60)
    store.request_cancel(record.id)
    proceed.set()
    worker.join(timeout=60)
    assert not worker.is_alive()
    final = store.get(record.id)
    assert final.status == CANCELLED
    assert final.result is not None
    # partial: nowhere near the full default-policy epoch count
    full = submission.configs * 120  # cifar10 max_epochs
    assert 0 < final.result["epochs_trained"] < full


def test_resume_requires_interrupted_status(store, small_submission):
    record = store.submit(small_submission)
    with pytest.raises(ValueError, match="only interrupted"):
        executor.resume(store, record.id)


def test_resume_completes_an_interrupted_experiment(tmp_path, small_submission):
    """Claimed-then-crashed (no process kill): recover + resume finishes
    the run from the journaled configuration stream."""
    root = tmp_path / "runs"
    store = RunStore(root)
    record = store.submit(small_submission)
    store.claim_next_queued()
    # journal the minted configs the way a real run would, then "crash"
    workload = small_submission.build_workload()
    generator = small_submission.build_generator(workload)
    configs = [
        generator.create_job()[1] for _ in range(small_submission.configs)
    ]
    store.record_configs(record.id, configs)
    store.close()

    reopened = RunStore(root)
    assert reopened.recover_interrupted() == [record.id]
    final = executor.resume(reopened, record.id)
    assert final.status == COMPLETED
    assert final.result["epochs_trained"] > 0
    kinds = [event["kind"] for event in reopened.read_events(record.id)]
    assert "resumed" in kinds
    # the resumed run used the journaled configs, not fresh mints
    assert reopened.minted_configs(record.id) == configs
