"""ServiceClient backpressure retry: which statuses retry, how the
backoff schedule composes with Retry-After, and the cap."""

from __future__ import annotations

import pytest

from repro.service.client import ServiceClient, ServiceError


def scripted_client(errors, max_retries=4, **kwargs):
    """A client whose transport fails with the scripted errors, then
    succeeds; sleeps are recorded, not slept."""
    sleeps = []
    client = ServiceClient(
        "http://test", max_retries=max_retries,
        sleep=sleeps.append, **kwargs
    )
    script = list(errors)

    def fake_request_once(method, path, payload=None):
        if script:
            raise script.pop(0)
        return b'{"ok": true}'

    client._request_once = fake_request_once
    return client, sleeps


def test_retries_429_and_503_until_success():
    client, sleeps = scripted_client([
        ServiceError(429, "rate limited", retry_after=2.0),
        ServiceError(503, "queue full", retry_after=5.0),
    ])
    assert client._request_json("POST", "/experiments") == {"ok": True}
    assert client.retries == 2
    # Attempt 0: base 0.5 floored at Retry-After 2.0; attempt 1:
    # base 1.0 floored at 5.0.
    assert sleeps == [2.0, 5.0]


def test_backoff_grows_exponentially_without_retry_after():
    client, sleeps = scripted_client(
        [ServiceError(429, "slow down")] * 3, backoff_base=0.5
    )
    client._request_json("GET", "/experiments")
    assert sleeps == [0.5, 1.0, 2.0]


def test_backoff_is_capped():
    client, sleeps = scripted_client(
        [ServiceError(429, "x", retry_after=9999.0)], backoff_cap=30.0
    )
    client._request_json("GET", "/experiments")
    assert sleeps == [30.0]


def test_non_retryable_status_raises_immediately():
    client, sleeps = scripted_client([ServiceError(404, "nope")])
    with pytest.raises(ServiceError) as info:
        client._request_json("GET", "/experiments/x")
    assert info.value.status == 404
    assert sleeps == []
    assert client.retries == 0


def test_retry_budget_is_bounded():
    client, sleeps = scripted_client(
        [ServiceError(429, "busy")] * 10, max_retries=2
    )
    with pytest.raises(ServiceError) as info:
        client._request_json("GET", "/experiments")
    assert info.value.status == 429
    assert len(sleeps) == 2
    assert client.retries == 2


def test_zero_retries_disables_backoff():
    client, sleeps = scripted_client(
        [ServiceError(429, "busy", retry_after=1.0)], max_retries=0
    )
    with pytest.raises(ServiceError):
        client._request_json("GET", "/experiments")
    assert sleeps == []


def test_invalid_max_retries_rejected():
    with pytest.raises(ValueError):
        ServiceClient("http://test", max_retries=-1)
