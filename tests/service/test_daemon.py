"""Integration tests for the daemon's HTTP API via the client."""

from __future__ import annotations

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ExperimentService


@pytest.fixture()
def service(tmp_path):
    svc = ExperimentService(tmp_path / "runs", port=0, workers=1)
    svc.start()
    try:
        yield svc
    finally:
        svc.stop()


@pytest.fixture()
def client(service) -> ServiceClient:
    return ServiceClient(service.url)


def test_health_reports_version(client):
    health = client.health()
    assert health["status"] == "ok"
    assert health["version"]


def test_submit_watch_events_metrics_roundtrip(service, client, small_submission):
    """The acceptance-criteria loop: submit -> watch -> result entirely
    over the HTTP API, with /metrics reflecting the run."""
    record = client.submit(small_submission.to_dict())
    assert record["status"] == "queued"

    updates = []
    final = client.watch(
        record["id"], poll_seconds=0.1, timeout=300,
        on_update=updates.append,
    )
    assert final["status"] == "completed"
    assert final["result"]["epochs_trained"] > 0
    assert final["checkpoint"]["epochs_trained"] > 0
    assert len(updates) >= 2  # at least queued/running + terminal

    listed = client.list_experiments()
    assert [entry["id"] for entry in listed] == [record["id"]]
    assert "result" not in listed[0]  # list view omits the heavy payload

    events = client.events(record["id"])
    kinds = {event["kind"] for event in events}
    assert {"submitted", "configs", "checkpoint", "audit", "result"} <= kinds
    offset = len(events) - 1
    assert len(client.events(record["id"], offset=offset)) == 1

    metrics = client.metrics_text()
    assert "service_experiments_submitted_total 1" in metrics
    assert 'service_experiments_finished_total{status="completed"} 1' in metrics
    epochs_line = next(
        line for line in metrics.splitlines()
        if line.startswith("service_epochs_trained_total")
    )
    assert float(epochs_line.split()[-1]) == final["result"]["epochs_trained"]


def test_cancel_queued_experiment(service, client, small_submission):
    """With a single worker busy, a second submission stays queued and
    cancels deterministically through DELETE."""
    first = client.submit(small_submission.to_dict())
    second = client.submit(small_submission.to_dict())
    cancelled = client.cancel(second["id"])
    assert cancelled["status"] in ("cancelled", "running")
    final_second = client.watch(second["id"], poll_seconds=0.1, timeout=300)
    assert final_second["status"] == "cancelled"
    # the busy worker's experiment still completes
    assert (
        client.watch(first["id"], poll_seconds=0.1, timeout=300)["status"]
        == "completed"
    )


def test_unknown_experiment_is_404(client):
    with pytest.raises(ServiceError) as excinfo:
        client.get("exp-does-not-exist")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client.events("exp-does-not-exist")
    assert excinfo.value.status == 404


def test_invalid_submission_is_400(client):
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"workload": "nonsense"})
    assert excinfo.value.status == 400
    assert "unknown workload" in str(excinfo.value)
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"bogus_field": 1})
    assert excinfo.value.status == 400


def test_unknown_route_is_404(client):
    with pytest.raises(ServiceError) as excinfo:
        client._request_json("GET", "/nope")
    assert excinfo.value.status == 404


def test_unreachable_daemon_raises_service_error():
    client = ServiceClient("http://127.0.0.1:1", timeout=1.0)
    with pytest.raises(ServiceError) as excinfo:
        client.health()
    assert excinfo.value.status == 0


def test_telemetry_endpoint_tracks_runs(service, client, small_submission):
    # Before any run: no experiment nodes — only the daemon's own
    # registry, self-ingested as node "service" (broker gauges for
    # `repro top`).
    empty = client.telemetry()
    assert set(empty["nodes"]) <= {"service"}

    record = client.submit(small_submission.to_dict())
    client.watch(record["id"], poll_seconds=0.1, timeout=300)

    telemetry = client.telemetry()
    # The executor ingests the run's registry under its experiment id.
    node = telemetry["nodes"][record["id"]]
    families = node["metrics"]
    epochs = sum(
        s["value"] for s in families["scheduler_epochs_total"]["samples"]
    )
    assert epochs > 0
    assert node["meta"]["status"] == "running"
    assert any(
        sample["node"] == record["id"] for sample in telemetry["history"]
    )

    # /metrics is the merged export: service-level families unlabelled,
    # the run's families tagged with its experiment id.
    metrics = client.metrics_text()
    assert "service_experiments_submitted_total 1" in metrics
    assert f'scheduler_epochs_total{{node="{record["id"]}"}}' in metrics
