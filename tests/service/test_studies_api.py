"""Daemon /studies endpoints: submit, watch, report, failure modes."""

from __future__ import annotations

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ExperimentService

FAST_STUDY = {
    "name": "api-study",
    "policies": ["default", "bandit"],
    "workloads": ["mlp"],
    "machines": [2],
    "seeds": [0],
    "num_configs": 3,
    "tmax_hours": 1.0,
    "stop_on_target": False,
    "baseline": {"policy": "default"},
    "metric": "best_metric",
}


@pytest.fixture()
def service(tmp_path):
    svc = ExperimentService(tmp_path / "runs", port=0, workers=1)
    svc.start()
    try:
        yield svc
    finally:
        svc.stop()


@pytest.fixture()
def client(service) -> ServiceClient:
    return ServiceClient(service.url)


def test_submit_spec_watch_and_report(service, client):
    record = client.submit_study({"spec": FAST_STUDY, "max_workers": 1})
    assert record["id"].startswith("study-")
    assert record["name"] == "api-study"
    assert record["cells_total"] == 2

    final = client.watch_study(record["id"], poll_seconds=0.05, timeout=120)
    assert final["status"] == "completed"
    assert final["cells_done"] == 2
    assert final["winner"]

    report = client.study_report(record["id"])
    assert report.startswith("# Study report: api-study")
    assert f"Winner: **{final['winner']}**" in report

    listed = client.list_studies()
    assert [entry["id"] for entry in listed] == [record["id"]]

    # the study's cells landed under the service root
    out_dir = service.store.root / "studies" / record["id"]
    assert (out_dir / "report.md").exists()
    assert len(list((out_dir / "cells").glob("*.json"))) == 2

    # lab metrics surface on the daemon's /metrics endpoint
    assert "lab_cells_done 2" in client.metrics_text()
    assert (
        'service_studies_finished_total{status="completed"} 1'
        in client.metrics_text()
    )


def test_submit_builtin_study_by_name(client):
    record = client.submit_study({"study": "sweep-smoke"})
    assert record["name"] == "sweep-smoke"
    assert record["cells_total"] == 4
    assert record["status"] in ("queued", "running")


def test_report_before_completion_is_409(client):
    record = client.submit_study({"study": "sweep-smoke"})
    with pytest.raises(ServiceError) as excinfo:
        client.study_report(record["id"])
    assert excinfo.value.status == 409


def test_invalid_study_submissions_are_400(client):
    for payload in (
        {},  # neither study nor spec
        {"study": "sweep-smoke", "spec": FAST_STUDY},  # both
        {"study": "not-a-study"},
        {"spec": {**FAST_STUDY, "policies": ["nope"]}},
        {"spec": FAST_STUDY, "max_workers": 0},
    ):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_study(payload)
        assert excinfo.value.status == 400, payload


def test_unknown_study_id_is_404(client):
    with pytest.raises(ServiceError) as excinfo:
        client.get_study("study-deadbeef")
    assert excinfo.value.status == 404
