"""Shared fixtures for the test suite.

The fixtures keep experiment-level tests fast: small configuration
pools, a cheap predictor, and cached workloads (the calibration step
samples the search space once per workload construction).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.curves.predictor import LeastSquaresCurvePredictor
from repro.workloads.cifar10 import Cifar10Workload
from repro.workloads.lunarlander import LunarLanderWorkload
from repro.workloads.mlp import MLPWorkload
from repro.workloads.datasets import make_blobs


@pytest.fixture(scope="session")
def cifar10_workload() -> Cifar10Workload:
    return Cifar10Workload()


@pytest.fixture(scope="session")
def lunarlander_workload() -> LunarLanderWorkload:
    return LunarLanderWorkload()


@pytest.fixture(scope="session")
def mlp_workload() -> MLPWorkload:
    return MLPWorkload(
        dataset=make_blobs(n_samples=400, n_features=8, n_classes=4, seed=3),
        max_epochs=15,
        target=0.9,
    )


@pytest.fixture(scope="session")
def fast_predictor() -> LeastSquaresCurvePredictor:
    """A cheap LS predictor for experiment-level tests."""
    return LeastSquaresCurvePredictor(
        n_sample_curves=40,
        restarts=1,
        model_names=("pow3", "weibull", "mmf", "ilog2"),
        max_nfev=40,
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
