"""Tests for the simulation runner."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import standard_configs
from repro.framework.experiment import ExperimentSpec
from repro.framework.job import JobState
from repro.generators.random_gen import RandomGenerator
from repro.policies.default import DefaultPolicy
from repro.sim.runner import run_simulation


def test_requires_generator_xor_configs(cifar10_workload):
    with pytest.raises(ValueError, match="exactly one"):
        run_simulation(cifar10_workload, DefaultPolicy())
    gen = RandomGenerator(cifar10_workload.space, seed=0)
    configs = standard_configs(cifar10_workload, 2)
    with pytest.raises(ValueError, match="exactly one"):
        run_simulation(
            cifar10_workload, DefaultPolicy(), generator=gen, configs=configs
        )


def test_all_jobs_complete_without_target(cifar10_workload):
    configs = standard_configs(cifar10_workload, 6)
    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=2, num_configs=6, seed=0, stop_on_target=False
        ),
    )
    assert all(job.state is JobState.COMPLETED for job in result.jobs)
    assert result.epochs_trained == 6 * cifar10_workload.domain.max_epochs


def test_machines_never_idle_while_work_remains(cifar10_workload):
    """Work-conservation: with stop_on_target off, total busy time is
    within one epoch-batch of makespan * machines."""
    configs = standard_configs(cifar10_workload, 4)
    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=2, num_configs=4, seed=0, stop_on_target=False
        ),
    )
    busy = sum(job.total_training_time for job in result.jobs)
    assert busy >= 0.9 * result.finished_at * 2


def test_tmax_caps_experiment(cifar10_workload):
    configs = standard_configs(cifar10_workload, 4)
    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=1,
            num_configs=4,
            seed=0,
            tmax=3600.0,
            stop_on_target=False,
        ),
    )
    assert result.finished_at <= 3600.0
    assert result.epochs_trained < 4 * 120


def test_generator_path_mints_requested_configs(cifar10_workload):
    gen = RandomGenerator(cifar10_workload.space, seed=1, max_configs=5)
    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        generator=gen,
        spec=ExperimentSpec(
            num_machines=2, num_configs=5, seed=0, stop_on_target=False
        ),
    )
    assert len(result.jobs) == 5


def test_exhausted_generator_handled(cifar10_workload):
    gen = RandomGenerator(cifar10_workload.space, seed=1, max_configs=3)
    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        generator=gen,
        spec=ExperimentSpec(
            num_machines=2, num_configs=10, seed=0, stop_on_target=False
        ),
    )
    assert len(result.jobs) == 3


def test_stop_check_halts_run_with_partial_result(cifar10_workload):
    configs = standard_configs(cifar10_workload, 4)
    calls = {"n": 0}

    def stop_after_five_events() -> bool:
        calls["n"] += 1
        return calls["n"] > 5

    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=2, num_configs=4, seed=0, stop_on_target=False
        ),
        stop_check=stop_after_five_events,
    )
    full = 4 * cifar10_workload.domain.max_epochs
    assert result.epochs_trained < full


def test_progress_hook_fires_at_epoch_granularity(cifar10_workload):
    configs = standard_configs(cifar10_workload, 4)
    seen = []
    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=2, num_configs=4, seed=0, stop_on_target=False
        ),
        progress_hook=lambda s: seen.append(s.result.epochs_trained),
        progress_every_epochs=50,
    )
    assert seen == sorted(seen)
    assert len(seen) >= result.epochs_trained // 50 - 1
    assert all(epochs >= 50 for epochs in seen)


def test_progress_every_epochs_validated(cifar10_workload):
    configs = standard_configs(cifar10_workload, 2)
    with pytest.raises(ValueError, match="progress_every_epochs"):
        run_simulation(
            cifar10_workload,
            DefaultPolicy(),
            configs=configs,
            progress_every_epochs=0,
        )


def test_timestamps_monotone_in_lifecycle(cifar10_workload):
    configs = standard_configs(cifar10_workload, 4)
    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=2, num_configs=4, seed=0, stop_on_target=False
        ),
    )
    times = [event.timestamp for event in result.lifecycle]
    assert times == sorted(times)
