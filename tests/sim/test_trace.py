"""Tests for trace recording and replay."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import standard_configs
from repro.framework.experiment import ExperimentSpec
from repro.policies.default import DefaultPolicy
from repro.sim.runner import run_simulation
from repro.sim.trace import Trace, TraceWorkload, record_trace


@pytest.fixture(scope="module")
def small_trace(cifar10_workload):
    configs = standard_configs(cifar10_workload, 6)
    return record_trace(cifar10_workload, configs, seed=0)


def test_record_covers_all_epochs(small_trace, cifar10_workload):
    assert len(small_trace) == 6
    for stream in small_trace.streams:
        assert len(stream) == cifar10_workload.domain.max_epochs


def test_replay_reproduces_streams(small_trace):
    workload = TraceWorkload(small_trace)
    run = workload.create_run(small_trace.configs[2])
    for duration, metric in small_trace.streams[2][:20]:
        result = run.step()
        assert result.duration == duration
        assert result.metric == metric


def test_replay_unknown_config_rejected(small_trace):
    workload = TraceWorkload(small_trace)
    with pytest.raises(KeyError, match="not present"):
        workload.create_run({"bogus": 1})


def test_replay_suspend_resume(small_trace):
    workload = TraceWorkload(small_trace)
    run = workload.create_run(small_trace.configs[0])
    for _ in range(5):
        run.step()
    state = run.snapshot_state()
    after = run.step().metric
    fresh = workload.create_run(small_trace.configs[0])
    fresh.restore_state(state)
    assert fresh.step().metric == after
    with pytest.raises(ValueError, match="out of range"):
        fresh.restore_state({"epoch": 9999})


def test_reorder_moves_streams_with_configs(small_trace):
    perm = [5, 4, 3, 2, 1, 0]
    reordered = small_trace.reorder(perm)
    assert reordered.configs[0] == small_trace.configs[5]
    assert reordered.streams[0] == small_trace.streams[5]


def test_reorder_validates_permutation(small_trace):
    with pytest.raises(ValueError, match="rearrangement"):
        small_trace.reorder([0, 0, 1, 2, 3, 4])


def test_shuffled_deterministic(small_trace):
    assert small_trace.shuffled(3).configs == small_trace.shuffled(3).configs
    assert small_trace.shuffled(3).configs != small_trace.shuffled(4).configs


def test_save_load_roundtrip(small_trace, tmp_path):
    path = tmp_path / "trace.json"
    small_trace.save(path)
    loaded = Trace.load(path)
    assert loaded.configs == small_trace.configs
    assert loaded.streams == small_trace.streams
    assert loaded.domain == small_trace.domain


def test_stream_length_validated(small_trace):
    with pytest.raises(ValueError, match="epochs"):
        Trace(
            configs=(small_trace.configs[0],),
            streams=(((60.0, 0.1),),),
            domain=small_trace.domain,
        )


def test_final_metrics(small_trace):
    finals = small_trace.final_metrics()
    assert len(finals) == 6
    assert finals[0] == small_trace.streams[0][-1][1]


def test_trace_replay_identical_experiments(small_trace):
    """Two simulations over the same trace are bit-identical — the
    property the order-sensitivity study (§7.2.2) depends on."""
    workload = TraceWorkload(small_trace)
    spec = ExperimentSpec(num_machines=2, num_configs=6, seed=0, stop_on_target=False)
    a = run_simulation(workload, DefaultPolicy(), configs=small_trace.configs, spec=spec)
    b = run_simulation(workload, DefaultPolicy(), configs=small_trace.configs, spec=spec)
    assert a.epochs_trained == b.epochs_trained
    assert a.finished_at == b.finished_at
    assert a.best_metric == b.best_metric


def test_trace_workload_space_requires_attachment(small_trace, cifar10_workload):
    bare = TraceWorkload(small_trace)
    with pytest.raises(RuntimeError, match="no search space"):
        _ = bare.space
    attached = TraceWorkload(small_trace, space=cifar10_workload.space)
    assert attached.space is cifar10_workload.space
