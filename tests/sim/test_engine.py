"""Tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationEngine


def test_events_fire_in_time_order():
    engine = SimulationEngine()
    fired = []
    engine.schedule(5.0, lambda: fired.append("b"))
    engine.schedule(1.0, lambda: fired.append("a"))
    engine.schedule(9.0, lambda: fired.append("c"))
    end = engine.run()
    assert fired == ["a", "b", "c"]
    assert end == 9.0


def test_ties_break_by_insertion_order():
    engine = SimulationEngine()
    fired = []
    for tag in "abc":
        engine.schedule(1.0, lambda t=tag: fired.append(t))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_nested_scheduling():
    engine = SimulationEngine()
    fired = []

    def first():
        fired.append(("first", engine.now))
        engine.schedule(2.0, lambda: fired.append(("second", engine.now)))

    engine.schedule(1.0, first)
    engine.run()
    assert fired == [("first", 1.0), ("second", 3.0)]


def test_negative_delay_rejected():
    engine = SimulationEngine()
    with pytest.raises(ValueError, match="past"):
        engine.schedule(-0.1, lambda: None)


def test_until_leaves_future_events_queued():
    engine = SimulationEngine()
    fired = []
    engine.schedule(1.0, lambda: fired.append(1))
    engine.schedule(10.0, lambda: fired.append(2))
    end = engine.run(until=5.0)
    assert fired == [1]
    assert end == 5.0
    assert engine.pending_events == 1
    engine.run()
    assert fired == [1, 2]


def test_stop_when_checked_before_each_event():
    engine = SimulationEngine()
    fired = []
    engine.schedule(1.0, lambda: fired.append(1))
    engine.schedule(2.0, lambda: fired.append(2))
    engine.run(stop_when=lambda: len(fired) >= 1)
    assert fired == [1]


def test_stop_method():
    engine = SimulationEngine()
    fired = []

    def stopper():
        fired.append("x")
        engine.stop()

    engine.schedule(1.0, stopper)
    engine.schedule(2.0, lambda: fired.append("y"))
    engine.run()
    assert fired == ["x"]


def test_clock_starts_at_zero():
    assert SimulationEngine().now == 0.0


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_clock_is_monotonic_for_any_schedule(delays):
    engine = SimulationEngine()
    observed = []
    for delay in delays:
        engine.schedule(delay, lambda: observed.append(engine.now))
    engine.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
