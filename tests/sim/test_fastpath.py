"""Fast-path contracts: stream isolation, reorder invariance, parity.

The vectorized fast path (:mod:`repro.sim.fastpath`) and the learned
scheduler's training environment both rest on one guarantee: a
configuration's observed stream is a pure function of (configuration
content, experiment seed) — never of the order configurations were
minted or scheduled in.  These tests pin that guarantee at every
layer:

* batched ``observed_stream`` hooks are bit-identical to stepping the
  scalar run epoch by epoch;
* ``precompute_streams`` is invariant to configuration order;
* the scalar DES gives each configuration the identical per-epoch
  curve when the configuration list is permuted (per-config RNG
  stream isolation in the real path, not just the replay);
* ``FastBatchWorkload`` replay and ``simulate_default_fast`` reproduce
  the scalar DES result exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework.experiment import ExperimentSpec
from repro.generators.random_gen import RandomGenerator
from repro.policies.default import DefaultPolicy
from repro.core.pop import POPPolicy
from repro.sim.fastpath import (
    FastBatchWorkload,
    config_key,
    precompute_streams,
    simulate_default_fast,
)
from repro.sim.runner import run_simulation
from repro.workloads.cifar10 import Cifar10Workload
from repro.workloads.lunarlander import LunarLanderWorkload

N_CONFIGS = 8
SEED = 5


@pytest.fixture(scope="module")
def workload():
    return Cifar10Workload()


@pytest.fixture(scope="module")
def configs(workload):
    generator = RandomGenerator(
        workload.space, seed=11, max_configs=N_CONFIGS
    )
    out = []
    for _ in range(N_CONFIGS):
        _, config = generator.create_job()
        out.append(config)
    return out


@pytest.mark.parametrize(
    "make_workload", [Cifar10Workload, LunarLanderWorkload]
)
def test_observed_stream_matches_scalar_stepping(make_workload):
    """The batched hook draws the same RNG stream as epoch stepping."""
    workload = make_workload()
    generator = RandomGenerator(workload.space, seed=2, max_configs=3)
    for _ in range(3):
        _, config = generator.create_job()
        durations, metrics = workload.create_run(
            config, seed=SEED
        ).observed_stream()
        run = workload.create_run(config, seed=SEED)
        scalar_durations, scalar_metrics = [], []
        while not run.finished:
            result = run.step()
            scalar_durations.append(result.duration)
            scalar_metrics.append(result.metric)
        np.testing.assert_array_equal(durations, scalar_durations)
        np.testing.assert_array_equal(metrics, scalar_metrics)


def test_precompute_streams_reorder_invariant(workload, configs):
    """Each configuration's stream survives any list permutation."""
    forward = precompute_streams(workload, configs, seed=SEED)
    order = list(reversed(range(len(configs))))
    backward = precompute_streams(
        workload, [configs[i] for i in order], seed=SEED
    )
    for new_row, old_row in enumerate(order):
        np.testing.assert_array_equal(
            backward.durations[new_row], forward.durations[old_row]
        )
        np.testing.assert_array_equal(
            backward.metrics[new_row], forward.metrics[old_row]
        )


def test_precompute_streams_subset_invariant(workload, configs):
    """Dropping configurations leaves the survivors' streams alone."""
    full = precompute_streams(workload, configs, seed=SEED)
    subset = precompute_streams(workload, configs[::2], seed=SEED)
    for new_row, old_row in enumerate(range(0, len(configs), 2)):
        np.testing.assert_array_equal(
            subset.metrics[new_row], full.metrics[old_row]
        )


def test_scalar_des_per_config_curves_order_independent(workload, configs):
    """Permuting the configuration list must not change any config's
    observed curve in the *scalar* DES (per-config RNG isolation)."""
    spec = ExperimentSpec(
        num_machines=2,
        num_configs=len(configs),
        tmax=48 * 3600.0,
        seed=SEED,
        stop_on_target=False,
    )
    forward = run_simulation(
        workload, DefaultPolicy(), configs=configs, spec=spec
    )
    permutation = [3, 0, 6, 1, 7, 4, 2, 5]
    backward = run_simulation(
        workload,
        DefaultPolicy(),
        configs=[configs[i] for i in permutation],
        spec=spec,
    )
    by_key_forward = {
        config_key(job.config): job.metrics for job in forward.jobs
    }
    by_key_backward = {
        config_key(job.config): job.metrics for job in backward.jobs
    }
    assert by_key_forward.keys() == by_key_backward.keys()
    for key, curve in by_key_forward.items():
        assert by_key_backward[key] == curve


def test_streams_reordered_view(workload, configs):
    streams = precompute_streams(workload, configs, seed=SEED)
    order = [1, 0, 3, 2, 5, 4, 7, 6]
    view = streams.reordered(order)
    for new_row, old_row in enumerate(order):
        np.testing.assert_array_equal(
            view.normalized[new_row], streams.normalized[old_row]
        )
    with pytest.raises(ValueError):
        streams.reordered([0, 0, 1, 2, 3, 4, 5, 6])


def test_fast_batch_workload_replays_exactly(workload, configs):
    """POP on the replay facade reproduces the scalar result."""
    spec = ExperimentSpec(
        num_machines=2, num_configs=len(configs), tmax=24 * 3600.0, seed=SEED
    )
    scalar = run_simulation(
        workload, POPPolicy(), configs=configs, spec=spec
    )
    replay = run_simulation(
        FastBatchWorkload(workload, configs, seed=SEED),
        POPPolicy(),
        configs=configs,
        spec=spec,
    )
    assert replay.reached_target == scalar.reached_target
    assert replay.time_to_target == scalar.time_to_target
    assert replay.epochs_trained == scalar.epochs_trained
    assert replay.best_metric == scalar.best_metric


def test_fast_batch_workload_rejects_foreign_inputs(workload, configs):
    fast = FastBatchWorkload(workload, configs, seed=SEED)
    with pytest.raises(ValueError):
        fast.create_run(configs[0], seed=SEED + 1)
    with pytest.raises(KeyError):
        fast.create_run({"unseen": 1}, seed=SEED)


def test_simulate_default_fast_matches_des(workload, configs):
    """The closed-form Default replay equals the event-loop result."""
    spec = ExperimentSpec(
        num_machines=3, num_configs=len(configs), tmax=24 * 3600.0, seed=SEED
    )
    scalar = run_simulation(
        workload, DefaultPolicy(), configs=configs, spec=spec
    )
    fast = simulate_default_fast(
        precompute_streams(workload, configs, seed=SEED),
        machines=3,
        tmax=24 * 3600.0,
    )
    assert fast["reached_target"] == scalar.reached_target
    if scalar.time_to_target is None:
        assert fast["time_to_target"] is None
    else:
        assert fast["time_to_target"] == pytest.approx(
            scalar.time_to_target, abs=1e-6
        )
    assert fast["epochs_trained"] == scalar.epochs_trained
    assert fast["best_metric"] == pytest.approx(scalar.best_metric)
