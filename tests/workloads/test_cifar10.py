"""Tests for the calibrated synthetic CIFAR-10 workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.cifar10 import MAX_ACCURACY, MAX_EPOCHS, cifar10_space


@pytest.fixture(scope="module")
def population(cifar10_workload):
    """Final accuracies of 400 random configurations."""
    rng = np.random.default_rng(123)
    finals = []
    for _ in range(400):
        config = cifar10_workload.space.sample(rng)
        run = cifar10_workload.create_run(config, seed=0)
        finals.append(run.true_final_accuracy)
    return np.asarray(finals)


def test_space_has_14_hyperparameters():
    assert len(cifar10_space()) == 14


def test_domain_parameters_match_paper(cifar10_workload):
    domain = cifar10_workload.domain
    assert domain.target == 0.77
    assert domain.kill_threshold == 0.15
    assert domain.random_performance == 0.10
    assert domain.eval_boundary == 10
    assert domain.max_epochs == 120
    assert not domain.normalizes


def test_nonlearner_fraction_near_paper(population):
    """Fig 2a: ~32% of configurations at/below random accuracy."""
    fraction = (population <= 0.12).mean()
    assert 0.25 <= fraction <= 0.42


def test_high_accuracy_fraction_small(population):
    """Fig 1: only a few percent exceed 75%."""
    fraction = (population > 0.75).mean()
    assert 0.01 <= fraction <= 0.12


def test_accuracy_never_exceeds_cap(population):
    assert population.max() <= MAX_ACCURACY + 1e-9


def test_achievers_exist(population):
    assert (population >= 0.77).sum() >= 1


def test_curves_are_deterministic_per_config_and_seed(cifar10_workload, rng):
    config = cifar10_workload.space.sample(rng)
    a = cifar10_workload.create_run(config, seed=3)
    b = cifar10_workload.create_run(config, seed=3)
    for _ in range(10):
        assert a.step().metric == b.step().metric


def test_run_seed_changes_noise_only(cifar10_workload, rng):
    config = cifar10_workload.space.sample(rng)
    a = cifar10_workload.create_run(config, seed=0)
    b = cifar10_workload.create_run(config, seed=1)
    ma = [a.step().metric for _ in range(30)]
    mb = [b.step().metric for _ in range(30)]
    assert ma != mb
    # ... but the underlying curve is identical (<= ~2% apart, §6.1).
    assert max(abs(x - y) for x, y in zip(ma, mb)) < 0.05
    assert a.true_final_accuracy == b.true_final_accuracy


def test_epoch_durations_near_one_minute(cifar10_workload, rng):
    durations = []
    for _ in range(20):
        config = cifar10_workload.space.sample(rng)
        run = cifar10_workload.create_run(config, seed=0)
        durations.extend(run.step().duration for _ in range(3))
    mean = np.mean(durations)
    assert 30.0 <= mean <= 120.0


def test_epoch_duration_roughly_constant_per_config(cifar10_workload, rng):
    config = cifar10_workload.space.sample(rng)
    run = cifar10_workload.create_run(config, seed=0)
    durations = [run.step().duration for _ in range(30)]
    assert np.std(durations) / np.mean(durations) < 0.10  # §9 assumption


def test_step_past_budget_raises(cifar10_workload, rng):
    config = cifar10_workload.space.sample(rng)
    run = cifar10_workload.create_run(config, seed=0)
    for _ in range(MAX_EPOCHS):
        run.step()
    assert run.finished
    with pytest.raises(RuntimeError, match="finished"):
        run.step()


def test_snapshot_restore_roundtrip(cifar10_workload, rng):
    config = cifar10_workload.space.sample(rng)
    run = cifar10_workload.create_run(config, seed=0)
    for _ in range(7):
        run.step()
    state = run.snapshot_state()
    next_metric = run.step().metric
    run.restore_state(state)
    assert run.epochs_completed == 7
    assert run.step().metric == pytest.approx(next_metric)


def test_restore_validates_epoch(cifar10_workload, rng):
    config = cifar10_workload.space.sample(rng)
    run = cifar10_workload.create_run(config, seed=0)
    with pytest.raises(ValueError, match="out of range"):
        run.restore_state({"epoch": 999, "rng_state": None})


def test_invalid_config_rejected(cifar10_workload):
    with pytest.raises(ValueError):
        cifar10_workload.create_run({"learning_rate": 0.1})


def test_learning_rate_sweet_spot_beats_extremes(cifar10_workload, rng):
    """Domain structure: mid-range learning rates outperform extremes
    on average (what the Bayesian HG exploits)."""
    def mean_quality(lr):
        scores = []
        for _ in range(40):
            config = cifar10_workload.space.sample(rng)
            config["learning_rate"] = lr
            config["momentum"] = 0.9
            scores.append(cifar10_workload.quality_quantile(config))
        return np.mean(scores)

    assert mean_quality(1e-3) > mean_quality(0.9)
    assert mean_quality(1e-3) > mean_quality(2e-5)


def test_overtake_pairs_exist(cifar10_workload, rng):
    """§2.2(a): some slow configs overtake fast ones late in training."""
    curves = []
    for _ in range(60):
        config = cifar10_workload.space.sample(rng)
        run = cifar10_workload.create_run(config, seed=0)
        curves.append([run.step().metric for _ in range(MAX_EPOCHS)])
    found = False
    for i, a in enumerate(curves):
        for b in curves[i + 1 :]:
            early_leader = a if a[30] > b[30] + 0.02 else (b if b[30] > a[30] + 0.02 else None)
            if early_leader is None:
                continue
            other = b if early_leader is a else a
            if other[-1] > early_leader[-1] + 0.02:
                found = True
    assert found
