"""Tests for the LSTM structured-sparsity workload (§9 Ongoing Work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.lstm_sparsity import (
    BEST_PERPLEXITY,
    RANDOM_PERPLEXITY,
    LSTMSparsityWorkload,
    lstm_space,
)


@pytest.fixture(scope="module")
def workload():
    return LSTMSparsityWorkload()


@pytest.fixture()
def config(workload, rng):
    return workload.space.sample(rng)


def test_space_has_lambda_dimension():
    space = lstm_space()
    assert "lasso_lambda" in space.names
    assert len(space) == 10


def test_epoch_reports_both_metrics(workload, config):
    run = workload.create_run(config, seed=0)
    result = run.step()
    assert set(result.extras) == {"perplexity", "sparsity"}
    assert BEST_PERPLEXITY * 0.9 <= result.extras["perplexity"] <= RANDOM_PERPLEXITY * 1.1
    assert 0.0 <= result.extras["sparsity"] <= 1.0
    # Primary metric is derived from perplexity.
    expected = 1.0 - result.extras["perplexity"] / RANDOM_PERPLEXITY
    assert result.metric == pytest.approx(max(expected, 0.0), abs=1e-9)


def test_perplexity_decreases_over_training(workload, rng):
    # Use a decent configuration (top quartile by quantile).
    config = max(
        (workload.space.sample(rng) for _ in range(30)),
        key=workload.quality_quantile,
    )
    run = workload.create_run(config, seed=0)
    ppl = [run.step().extras["perplexity"] for _ in range(60)]
    assert ppl[-1] < ppl[0] * 0.6
    assert ppl[-1] >= BEST_PERPLEXITY * 0.9


def test_sparsity_rises_with_lambda(workload, rng):
    base = workload.space.sample(rng)
    low = dict(base, lasso_lambda=1e-6)
    high = dict(base, lasso_lambda=5e-3)
    final_sparsity = {}
    for tag, config in (("low", low), ("high", high)):
        run = workload.create_run(config, seed=0)
        for _ in range(60):
            result = run.step()
        final_sparsity[tag] = result.extras["sparsity"]
    assert final_sparsity["high"] > final_sparsity["low"] + 0.2


def test_extreme_lambda_hurts_quality(workload, rng):
    """The λ trade-off: heavy regularisation costs perplexity."""
    deltas = []
    for _ in range(20):
        base = workload.space.sample(rng)
        gentle = workload.quality_quantile(dict(base, lasso_lambda=1e-5))
        harsh = workload.quality_quantile(dict(base, lasso_lambda=1e-2))
        deltas.append(gentle - harsh)
    assert np.mean(deltas) > 0.1


def test_snapshot_roundtrip(workload, config):
    run = workload.create_run(config, seed=0)
    for _ in range(5):
        run.step()
    state = run.snapshot_state()
    nxt = run.step().metric
    run.restore_state(state)
    assert run.step().metric == pytest.approx(nxt)


def test_domain_spec(workload):
    domain = workload.domain
    assert domain.metric_name == "quality"
    assert 0.0 < domain.kill_threshold < domain.target < 1.0
