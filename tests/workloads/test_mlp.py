"""Tests for the real-training numpy MLP workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.datasets import make_blobs
from repro.workloads.mlp import MLPWorkload, mlp_space


GOOD_CONFIG = {
    "learning_rate": 0.05,
    "momentum": 0.9,
    "l2_reg": 1e-5,
    "batch_size": 32,
    "hidden1": 32,
    "hidden2": 32,
    "init_scale": 0.1,
    "activation": "relu",
}


def test_real_training_learns(mlp_workload):
    """A sensible configuration must genuinely learn the blobs task."""
    run = mlp_workload.create_run(GOOD_CONFIG, seed=0)
    initial = run.validation_accuracy()
    for _ in range(10):
        result = run.step()
    assert result.metric > initial + 0.3
    assert result.metric > 0.6


def test_terrible_lr_fails_to_learn(mlp_workload):
    config = dict(GOOD_CONFIG, learning_rate=1e-4, momentum=0.0)
    run = mlp_workload.create_run(config, seed=0)
    for _ in range(5):
        result = run.step()
    good = mlp_workload.create_run(GOOD_CONFIG, seed=0)
    for _ in range(5):
        good_result = good.step()
    assert good_result.metric > result.metric


def test_divergent_config_keeps_reporting(mlp_workload):
    """Exploding gradients must not crash the run (frameworks keep
    emitting stats); accuracy just stays terrible."""
    config = dict(GOOD_CONFIG, learning_rate=1.0, momentum=0.99, init_scale=1.0)
    run = mlp_workload.create_run(config, seed=0)
    for _ in range(3):
        result = run.step()
    assert np.isfinite(result.metric)
    assert 0.0 <= result.metric <= 1.0


def test_suspend_resume_bit_exact(mlp_workload):
    """§5.1: a resumed run continues exactly where it left off."""
    run = mlp_workload.create_run(GOOD_CONFIG, seed=0)
    for _ in range(4):
        run.step()
    state = run.snapshot_state()
    continued = [run.step().metric for _ in range(3)]

    fresh = mlp_workload.create_run(GOOD_CONFIG, seed=0)
    fresh.restore_state(state)
    resumed = [fresh.step().metric for _ in range(3)]
    assert continued == resumed


def test_snapshot_contains_full_optimizer_state(mlp_workload):
    run = mlp_workload.create_run(GOOD_CONFIG, seed=0)
    run.step()
    state = run.snapshot_state()
    assert set(state) == {"epoch", "params", "velocity", "rng_state"}
    assert set(state["params"]) == {"w1", "b1", "w2", "b2", "w3", "b3"}
    # Mutating the snapshot must not affect the live run.
    state["params"]["w1"][:] = 0.0
    before = run.validation_accuracy()
    assert before > 0  # weights untouched


def test_cost_model_duration_scales_with_capacity(mlp_workload):
    small = mlp_workload.create_run(dict(GOOD_CONFIG, hidden1=8, hidden2=8), seed=0)
    large = mlp_workload.create_run(
        dict(GOOD_CONFIG, hidden1=128, hidden2=128), seed=0
    )
    assert large.step().duration > small.step().duration


def test_measured_wall_time_mode():
    workload = MLPWorkload(
        dataset=make_blobs(n_samples=200, n_features=5, n_classes=3, seed=1),
        max_epochs=5,
        measure_wall_time=True,
    )
    run = workload.create_run(GOOD_CONFIG, seed=0)
    result = run.step()
    assert 0 < result.duration < 10.0  # real seconds, tiny dataset


def test_space_and_domain(mlp_workload):
    assert len(mlp_space()) == 8
    domain = mlp_workload.domain
    assert domain.kind == "supervised"
    assert domain.random_performance == pytest.approx(0.25)  # 4 classes
    assert domain.kill_threshold < domain.target


def test_run_budget_enforced(mlp_workload):
    run = mlp_workload.create_run(GOOD_CONFIG, seed=0)
    for _ in range(mlp_workload.domain.max_epochs):
        run.step()
    assert run.finished
    with pytest.raises(RuntimeError):
        run.step()


def test_activation_variants_work(mlp_workload):
    for act in ("relu", "tanh"):
        run = mlp_workload.create_run(dict(GOOD_CONFIG, activation=act), seed=0)
        assert np.isfinite(run.step().metric)
