"""Tests for the calibrated synthetic LunarLander workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.lunarlander import (
    CRASH_REWARD,
    MAX_EPOCHS,
    REWARD_MAX,
    REWARD_MIN,
    SOLVED_REWARD,
    lunarlander_space,
)


@pytest.fixture(scope="module")
def population(lunarlander_workload):
    rng = np.random.default_rng(77)
    runs = []
    for _ in range(300):
        config = lunarlander_workload.space.sample(rng)
        runs.append(lunarlander_workload.create_run(config, seed=0))
    return runs


def test_space_has_11_hyperparameters():
    assert len(lunarlander_space()) == 11


def test_domain_parameters_match_paper(lunarlander_workload):
    domain = lunarlander_workload.domain
    assert domain.target == 200.0
    assert domain.kill_threshold == -100.0
    assert domain.r_min == -500.0 and domain.r_max == 300.0
    assert domain.eval_boundary == 20  # 2,000 trials / 100 per epoch
    assert domain.normalizes
    assert domain.normalize(-500.0) == 0.0
    assert domain.normalize(300.0) == 1.0


def test_majority_non_learning(population):
    """§6.3: over 50% of configurations are non-learning."""
    non_learning = sum(
        1 for run in population if run.true_final_reward <= CRASH_REWARD + 30
    )
    assert non_learning / len(population) > 0.5


def test_solver_fraction_small_but_nonzero(population):
    solvers = sum(run.is_solver for run in population)
    assert 1 <= solvers <= 0.12 * len(population)


def test_rewards_within_declared_range(population, rng):
    run = population[0]
    rewards = [run.step().metric for _ in range(50)]
    assert all(REWARD_MIN <= r <= REWARD_MAX for r in rewards)


def test_learning_crash_shape_exists(population):
    """Fig 8: some configs rise then crash to <= -100 and stay."""
    found = False
    for run in population:
        curve = run._true_curve
        peak_epoch = int(np.argmax(curve))
        peak = curve[peak_epoch]
        if peak > 0 and peak_epoch < MAX_EPOCHS - 20:
            tail = curve[peak_epoch + 10 :]
            if tail.size and np.all(tail <= CRASH_REWARD + 40):
                found = True
                break
    assert found


def test_crashed_jobs_stay_crashed(population):
    for run in population:
        curve = run._true_curve
        peak = curve.max()
        if peak > 50 and curve[-1] <= CRASH_REWARD:
            # after the crash the reward never recovers above -60
            peak_at = int(np.argmax(curve))
            after_peak = curve[peak_at:]
            crash_at = peak_at + int(np.argmax(after_peak <= CRASH_REWARD))
            assert np.all(curve[crash_at + 5 :] < -60)


def test_solved_condition_is_epoch_mean(lunarlander_workload, population):
    """One epoch = the 100-trial solved window, so a solver's noiseless
    curve crosses 200 within the budget."""
    solver = next(run for run in population if run.is_solver)
    assert np.any(solver._true_curve >= SOLVED_REWARD)


def test_snapshot_restore_roundtrip(lunarlander_workload, rng):
    config = lunarlander_workload.space.sample(rng)
    run = lunarlander_workload.create_run(config, seed=0)
    for _ in range(5):
        run.step()
    state = run.snapshot_state()
    next_metric = run.step().metric
    run.restore_state(state)
    assert run.step().metric == pytest.approx(next_metric)


def test_epoch_durations_positive_and_stable(lunarlander_workload, rng):
    config = lunarlander_workload.space.sample(rng)
    run = lunarlander_workload.create_run(config, seed=0)
    durations = [run.step().duration for _ in range(20)]
    assert min(durations) > 0
    assert np.std(durations) / np.mean(durations) < 0.15


def test_quality_quantile_in_unit_interval(lunarlander_workload, rng):
    for _ in range(20):
        config = lunarlander_workload.space.sample(rng)
        assert 0.0 < lunarlander_workload.quality_quantile(config) < 1.0
