"""Tests for synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.datasets import make_blobs, make_spirals


def test_blobs_shapes_and_split():
    data = make_blobs(n_samples=1000, n_features=10, n_classes=5, seed=0)
    total = data.x_train.shape[0] + data.x_val.shape[0]
    assert total == 1000
    assert data.x_train.shape[1] == 10
    assert data.num_features == 10
    assert data.num_classes == 5
    assert data.random_accuracy == pytest.approx(0.2)
    assert data.x_val.shape[0] == 250


def test_blobs_standardized():
    data = make_blobs(seed=1)
    full = np.concatenate([data.x_train, data.x_val])
    np.testing.assert_allclose(full.mean(axis=0), 0.0, atol=1e-9)
    np.testing.assert_allclose(full.std(axis=0), 1.0, atol=1e-6)


def test_blobs_deterministic():
    a = make_blobs(seed=7)
    b = make_blobs(seed=7)
    np.testing.assert_array_equal(a.x_train, b.x_train)
    np.testing.assert_array_equal(a.y_train, b.y_train)


def test_blobs_learnable_structure():
    """Classes must be separable enough that a linear readout beats
    random guessing (otherwise no hyperparameter matters)."""
    data = make_blobs(n_samples=1500, n_classes=4, cluster_std=1.5, seed=2)
    # nearest-centroid classifier
    centroids = np.stack(
        [data.x_train[data.y_train == c].mean(axis=0) for c in range(4)]
    )
    distances = ((data.x_val[:, None, :] - centroids[None]) ** 2).sum(axis=2)
    accuracy = (distances.argmin(axis=1) == data.y_val).mean()
    assert accuracy > 0.5


def test_blobs_validation_errors():
    with pytest.raises(ValueError):
        make_blobs(n_samples=5, n_classes=10)
    with pytest.raises(ValueError):
        make_blobs(val_fraction=1.0)


def test_spirals_basic():
    data = make_spirals(n_samples=900, n_classes=3, seed=0)
    assert data.num_classes == 3
    assert data.num_features == 2
    assert data.x_train.shape[0] + data.x_val.shape[0] == 900


def test_spirals_classes_balanced():
    data = make_spirals(n_samples=600, n_classes=3, seed=1)
    all_y = np.concatenate([data.y_train, data.y_val])
    counts = np.bincount(all_y)
    assert counts.min() == counts.max() == 200


def test_spirals_validation():
    with pytest.raises(ValueError):
        make_spirals(n_classes=1)
