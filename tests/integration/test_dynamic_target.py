"""Tests for the §9 dynamic-target mode."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import standard_configs
from repro.framework.experiment import ExperimentSpec
from repro.policies.default import DefaultPolicy
from repro.core.pop import POPPolicy
from repro.sim.runner import run_simulation


def test_spec_validation():
    with pytest.raises(ValueError, match="stop_on_target=False"):
        ExperimentSpec(dynamic_target=True, stop_on_target=True)
    with pytest.raises(ValueError, match="target_increment"):
        ExperimentSpec(
            dynamic_target=True, stop_on_target=False, target_increment=0.0
        )


def test_dynamic_target_records_milestones(cifar10_workload, fast_predictor):
    configs = standard_configs(cifar10_workload, 12)
    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=4,
            num_configs=12,
            seed=0,
            stop_on_target=False,
            dynamic_target=True,
            target=0.30,
            target_increment=0.05,
        ),
        predictor=fast_predictor,
    )
    milestones = result.target_achievements
    assert len(milestones) >= 2, "several rising targets should be hit"
    targets = [m.target for m in milestones]
    assert targets == sorted(targets)
    assert all(t2 > t1 for t1, t2 in zip(targets, targets[1:]))
    for milestone in milestones:
        assert milestone.metric >= milestone.target
    # time_to_target records the FIRST milestone.
    assert result.reached_target
    assert result.time_to_target == milestones[0].timestamp


def test_dynamic_target_does_not_stop_experiment(
    cifar10_workload, fast_predictor
):
    configs = standard_configs(cifar10_workload, 8)
    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=4,
            num_configs=8,
            seed=0,
            stop_on_target=False,
            dynamic_target=True,
            target=0.30,
        ),
        predictor=fast_predictor,
    )
    # All jobs ran to completion despite targets being reached.
    assert result.epochs_trained == 8 * cifar10_workload.domain.max_epochs


def test_dynamic_target_with_pop(cifar10_workload, fast_predictor):
    """POP keeps chasing the rising target (its context target is
    updated in place)."""
    configs = standard_configs(cifar10_workload, 16)
    result = run_simulation(
        cifar10_workload,
        POPPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=4,
            num_configs=16,
            seed=0,
            stop_on_target=False,
            dynamic_target=True,
            target=0.30,
            target_increment=0.05,
        ),
        predictor=fast_predictor,
    )
    assert result.target_achievements
    final_target = result.target_achievements[-1].target
    assert final_target > 0.30
    # The best milestone metric approaches the pool's true best.
    assert result.best_metric >= final_target
