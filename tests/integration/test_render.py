"""Tests for the ASCII renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.render import histogram, line_chart, sparkline


def test_sparkline_basic():
    line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert len(line) == 8
    assert line[0] == "▁" and line[-1] == "█"


def test_sparkline_resampled_width():
    assert len(sparkline(range(100), width=20)) == 20


def test_sparkline_flat_series():
    assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"


def test_sparkline_validation():
    with pytest.raises(ValueError):
        sparkline([])
    with pytest.raises(ValueError):
        sparkline([1.0], width=0)


def test_line_chart_contains_markers_and_legend():
    chart = line_chart(
        {"pop": np.linspace(0, 1, 50), "bandit": np.linspace(1, 0, 50)},
        width=40,
        height=8,
    )
    assert "p" in chart and "b" in chart
    assert "p=pop" in chart and "b=bandit" in chart
    rows = chart.splitlines()
    assert len(rows) == 8 + 2  # plot + axis + legend


def test_line_chart_y_range_annotations():
    chart = line_chart({"x": [2.0, 4.0]}, width=10, height=5)
    assert "4" in chart.splitlines()[0]
    assert "2" in chart.splitlines()[4]


def test_line_chart_validation():
    with pytest.raises(ValueError):
        line_chart({})
    with pytest.raises(ValueError):
        line_chart({"a": [1]}, width=2, height=2)


def test_histogram_counts():
    out = histogram([1, 1, 1, 5, 5, 9], bins=3, width=10, label="demo")
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert len(lines) == 4
    assert lines[1].endswith("3")  # first bin holds the three 1s


def test_histogram_validation():
    with pytest.raises(ValueError):
        histogram([])
    with pytest.raises(ValueError):
        histogram([1.0], bins=0)
