"""End-to-end runs with each curve-predictor backend behind POP."""

from __future__ import annotations


from repro.analysis.experiments import standard_configs
from repro.core.pop import POPPolicy
from repro.curves.predictor import (
    LastValuePredictor,
    LeastSquaresCurvePredictor,
    MCMCCurvePredictor,
)
from repro.framework.experiment import ExperimentSpec
from repro.runtime.local import run_live
from repro.sim.runner import run_simulation


def test_pop_with_mcmc_backend(cifar10_workload):
    """The faithful MCMC path works end-to-end (tiny budget)."""
    predictor = MCMCCurvePredictor(
        n_walkers=24,
        n_samples=60,
        thin=3,
        model_names=("pow3", "weibull", "ilog2"),
        seed=0,
    )
    configs = standard_configs(cifar10_workload, 8)
    result = run_simulation(
        cifar10_workload,
        POPPolicy(),
        configs=configs,
        spec=ExperimentSpec(num_machines=3, num_configs=8, seed=0),
        predictor=predictor,
    )
    assert result.predictions_made > 0
    assert result.epochs_trained > 0


def test_pop_with_last_value_backend(cifar10_workload):
    configs = standard_configs(cifar10_workload, 8)
    result = run_simulation(
        cifar10_workload,
        POPPolicy(),
        configs=configs,
        spec=ExperimentSpec(num_machines=3, num_configs=8, seed=0),
        predictor=LastValuePredictor(),
    )
    assert result.epochs_trained > 0


def test_pop_live_with_unlocked_predictions(cifar10_workload):
    """POP on the threaded runtime: predictions release the scheduler
    lock (§5.2 distributed prediction) without corrupting state."""
    predictor = LeastSquaresCurvePredictor(
        n_sample_curves=20, restarts=1,
        model_names=("pow3", "weibull"), max_nfev=25,
    )
    configs = standard_configs(cifar10_workload, 12)
    result = run_live(
        cifar10_workload,
        POPPolicy(),
        configs=configs,
        spec=ExperimentSpec(num_machines=4, num_configs=12, seed=0),
        predictor=predictor,
        time_scale=1e-4,
    )
    assert result.predictions_made > 0
    # state consistency after concurrent prediction windows
    for job in result.jobs:
        epochs = [stat.epoch for stat in job.history]
        assert epochs == sorted(set(epochs))


def test_rl_predictions_receive_normalized_history(
    lunarlander_workload, fast_predictor
):
    """Node Agents normalise RL rewards before prediction, so the
    predictor always sees [0, 1] curves."""
    from repro.framework.node_agent import NodeAgent
    from repro.framework.snapshot import CRIU_COST_MODEL

    config = standard_configs(lunarlander_workload, 1)[0]
    agent = NodeAgent(
        machine_id="m",
        workload=lunarlander_workload,
        snapshot_cost_model=CRIU_COST_MODEL,
        predictor=fast_predictor,
    )
    agent.assign("j0", config, seed=0)
    for _ in range(25):
        agent.train_epoch()
    assert all(0.0 <= v <= 1.0 for v in agent.curve_history)
    prediction = agent.predict(10)
    assert prediction.samples.min() >= 0.0
    assert prediction.samples.max() <= 1.0
