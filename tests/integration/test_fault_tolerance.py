"""Tests for machine-failure injection and checkpoint recovery."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import standard_configs
from repro.framework.events import LifecycleKind
from repro.framework.experiment import ExperimentSpec
from repro.framework.job import JobState
from repro.framework.resource_manager import ResourceManager
from repro.policies.default import DefaultPolicy
from repro.core.pop import POPPolicy
from repro.sim.runner import run_simulation


# ------------------------------------------------------- resource manager


def test_rm_fail_and_recover_idle_machine():
    rm = ResourceManager(2)
    rm.fail_machine("machine-00")
    assert rm.is_failed("machine-00")
    assert rm.num_idle == 1
    assert rm.num_failed == 1
    # A failed machine cannot be reserved.
    assert rm.reserve_idle_machine() == "machine-01"
    assert rm.reserve_idle_machine() is None
    rm.recover_machine("machine-00")
    assert rm.reserve_idle_machine() == "machine-00"


def test_rm_fail_busy_machine():
    rm = ResourceManager(1)
    machine = rm.reserve_idle_machine()
    rm.fail_machine(machine)
    assert rm.num_busy == 0
    with pytest.raises(ValueError, match="not reserved"):
        rm.release_machine(machine)


def test_rm_failure_validation():
    rm = ResourceManager(1)
    with pytest.raises(ValueError, match="unknown machine"):
        rm.fail_machine("machine-99")
    rm.fail_machine("machine-00")
    with pytest.raises(ValueError, match="already failed"):
        rm.fail_machine("machine-00")
    with pytest.raises(ValueError, match="not failed"):
        rm.recover_machine("machine-77")


# ------------------------------------------------------------- job


def test_job_truncate_history():
    from repro.framework.events import AppStat
    from repro.framework.job import Job

    job = Job(job_id="j", config={})
    for epoch in range(1, 6):
        job.record(AppStat("j", epoch, 0.1 * epoch, 60.0, epoch * 60.0, "m"))
    lost = job.truncate_history(2)
    assert lost == 3
    assert job.epochs_completed == 2
    with pytest.raises(ValueError):
        job.truncate_history(-1)
    assert job.truncate_history(10) == 0


# -------------------------------------------------------- end to end


def _run(workload, checkpoint, mtbf=2500.0, n_configs=10, seed=0):
    configs = standard_configs(workload, n_configs)
    return run_simulation(
        workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=4,
            num_configs=n_configs,
            seed=seed,
            stop_on_target=False,
            machine_mtbf=mtbf,
            machine_recovery_seconds=600.0,
            checkpoint_interval=checkpoint,
        ),
    )


def test_failures_do_not_break_completion(cifar10_workload):
    result = _run(cifar10_workload, checkpoint=10)
    assert result.machine_failures > 0
    assert all(job.state is JobState.COMPLETED for job in result.jobs)
    # Every job trained its full budget despite failures.
    for job in result.jobs:
        assert job.epochs_completed == cifar10_workload.domain.max_epochs


def test_history_remains_monotonic_after_failures(cifar10_workload):
    result = _run(cifar10_workload, checkpoint=10)
    for job in result.jobs:
        epochs = [stat.epoch for stat in job.history]
        assert epochs == sorted(set(epochs))


def test_checkpointing_bounds_lost_work(cifar10_workload):
    without = _run(cifar10_workload, checkpoint=None)
    with_ckpt = _run(cifar10_workload, checkpoint=10)
    assert with_ckpt.epochs_lost_to_failures < without.epochs_lost_to_failures
    # With k-epoch checkpoints, each failure loses < k epochs plus the
    # one in flight.
    assert (
        with_ckpt.epochs_lost_to_failures
        <= with_ckpt.machine_failures * 10
    )


def test_failure_lifecycle_events_recorded(cifar10_workload):
    result = _run(cifar10_workload, checkpoint=10)
    kinds = [event.kind for event in result.lifecycle]
    assert LifecycleKind.MACHINE_FAILED in kinds
    assert LifecycleKind.MACHINE_RECOVERED in kinds


def test_failures_slow_the_experiment(cifar10_workload):
    calm = _run(cifar10_workload, checkpoint=10, mtbf=None)
    stormy = _run(cifar10_workload, checkpoint=10, mtbf=1500.0)
    assert stormy.finished_at > calm.finished_at


def test_pop_survives_failures(cifar10_workload, fast_predictor):
    configs = standard_configs(cifar10_workload, 20)
    result = run_simulation(
        cifar10_workload,
        POPPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=4,
            num_configs=20,
            seed=0,
            machine_mtbf=4000.0,
            machine_recovery_seconds=600.0,
            checkpoint_interval=10,
        ),
        predictor=fast_predictor,
    )
    # The experiment still concludes (target or exhaustion), with
    # failures in the log.
    assert result.machine_failures > 0
    assert result.epochs_trained > 0


def test_spec_validation():
    with pytest.raises(ValueError, match="machine_mtbf"):
        ExperimentSpec(machine_mtbf=0.0)
    with pytest.raises(ValueError, match="recovery"):
        ExperimentSpec(machine_recovery_seconds=-1.0)
    with pytest.raises(ValueError, match="checkpoint_interval"):
        ExperimentSpec(checkpoint_interval=0)
