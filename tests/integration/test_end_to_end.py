"""End-to-end integration tests across policies, workloads, runtimes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import standard_configs
from repro.core.pop import POPPolicy
from repro.framework.experiment import ExperimentSpec
from repro.framework.job import JobState
from repro.policies.bandit import BanditPolicy
from repro.policies.default import DefaultPolicy
from repro.policies.earlyterm import EarlyTermPolicy
from repro.sim.runner import run_simulation


def run(workload, policy, predictor, n_configs=20, machines=4, seed=0, **kw):
    configs = standard_configs(workload, n_configs)
    return run_simulation(
        workload,
        policy,
        configs=configs,
        spec=ExperimentSpec(
            num_machines=machines, num_configs=n_configs, seed=seed, **kw
        ),
        predictor=predictor,
    )


@pytest.mark.parametrize(
    "policy_cls", [DefaultPolicy, BanditPolicy, EarlyTermPolicy, POPPolicy]
)
def test_every_policy_completes_supervised(
    policy_cls, cifar10_workload, fast_predictor
):
    result = run(cifar10_workload, policy_cls(), fast_predictor)
    assert result.epochs_trained > 0
    assert result.best_metric is not None
    # No job left in a live state.
    for job in result.jobs:
        assert job.state in (
            JobState.COMPLETED,
            JobState.TERMINATED,
            JobState.SUSPENDED,  # harvest on stop-at-target
            JobState.RUNNING,
            JobState.PENDING,
        )
        if not result.reached_target:
            assert job.state in (JobState.COMPLETED, JobState.TERMINATED)


@pytest.mark.parametrize(
    "policy_cls", [DefaultPolicy, BanditPolicy, EarlyTermPolicy, POPPolicy]
)
def test_every_policy_completes_rl(
    policy_cls, lunarlander_workload, fast_predictor
):
    result = run(
        lunarlander_workload,
        policy_cls(),
        fast_predictor,
        n_configs=15,
        machines=5,
    )
    assert result.epochs_trained > 0


def test_pop_terminates_non_learners_early(cifar10_workload, fast_predictor):
    result = run(
        cifar10_workload,
        POPPolicy(),
        fast_predictor,
        n_configs=25,
        stop_on_target=False,
    )
    terminated = [j for j in result.jobs if j.state is JobState.TERMINATED]
    assert terminated, "POP should kill poor configurations"
    # Non-learners die within the grace period (2 x b = 20 epochs) or a
    # couple of prediction boundaries after it.
    non_learners = [
        j for j in terminated if max(j.metrics) < 0.15
    ]
    assert non_learners
    assert all(j.epochs_completed <= 40 for j in non_learners)


def test_pop_spends_less_epoch_budget_than_default(
    cifar10_workload, fast_predictor
):
    default = run(
        cifar10_workload, DefaultPolicy(), fast_predictor, stop_on_target=False
    )
    pop = run(
        cifar10_workload, POPPolicy(), fast_predictor, stop_on_target=False
    )
    assert pop.epochs_trained < 0.8 * default.epochs_trained


def test_pop_suspends_and_resumes_jobs(cifar10_workload, fast_predictor):
    result = run(
        cifar10_workload,
        POPPolicy(),
        fast_predictor,
        n_configs=25,
        stop_on_target=False,
    )
    assert result.snapshots, "POP should suspend opportunistic jobs"
    resumed = [
        e for e in result.lifecycle if e.kind.value == "resumed"
    ]
    assert resumed, "suspended jobs should be resumed later"


def test_promising_pool_grows_over_time(cifar10_workload, fast_predictor):
    """Fig 4c: the promising/active ratio increases as evidence
    accumulates."""
    result = run(
        cifar10_workload,
        POPPolicy(),
        fast_predictor,
        n_configs=30,
        stop_on_target=False,
    )
    timeline = result.pool_timeline
    third = len(timeline) // 3
    early = np.mean(
        [s.promising / s.active for s in timeline[:third] if s.active]
    )
    late = np.mean(
        [s.promising / s.active for s in timeline[-third:] if s.active]
    )
    assert late > early


def test_bandit_eliminates_losers_quickly(cifar10_workload, fast_predictor):
    result = run(
        cifar10_workload,
        BanditPolicy(),
        fast_predictor,
        stop_on_target=False,
    )
    terminated = [j for j in result.jobs if j.state is JobState.TERMINATED]
    assert len(terminated) >= 10
    # Bandit's kills happen exactly at its evaluation boundaries.
    assert all(j.epochs_completed % 10 == 0 for j in terminated)


def test_earlyterm_kills_after_its_first_boundary(
    cifar10_workload, fast_predictor
):
    result = run(
        cifar10_workload,
        EarlyTermPolicy(),
        fast_predictor,
        stop_on_target=False,
    )
    terminated = [j for j in result.jobs if j.state is JobState.TERMINATED]
    assert terminated
    assert all(j.epochs_completed >= 30 for j in terminated)
    assert all(j.epochs_completed % 30 == 0 for j in terminated)


def test_rl_normalization_used_in_decisions(
    lunarlander_workload, fast_predictor
):
    """RL experiments with negative rewards must still terminate
    non-learners (requires min-max normalisation internally)."""
    result = run(
        lunarlander_workload,
        POPPolicy(),
        fast_predictor,
        n_configs=15,
        machines=5,
        stop_on_target=False,
    )
    terminated = [j for j in result.jobs if j.state is JobState.TERMINATED]
    assert terminated


def test_experiment_seed_changes_timing_not_structure(
    cifar10_workload, fast_predictor
):
    a = run(cifar10_workload, BanditPolicy(), fast_predictor, seed=0)
    b = run(cifar10_workload, BanditPolicy(), fast_predictor, seed=1)
    # Same configuration set, different training noise: outcomes are
    # similar but not identical (the paper's ≤2% non-determinism).
    assert a.epochs_trained != b.epochs_trained or a.finished_at != b.finished_at
