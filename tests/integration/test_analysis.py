"""Tests for the analysis helpers (figure data extraction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import (
    run_standard_experiment,
    standard_configs,
    standard_spec,
)
from repro.analysis.figures import (
    InstrumentedPOPPolicy,
    config_curves,
    final_metric_cdf,
    find_overtake_pair,
    job_duration_cdf,
    prediction_with_confidence,
    promising_ratio_timeline,
    suspend_overhead_stats,
    time_to_target_stats,
)
from repro.framework.experiment import ExperimentSpec
from repro.policies.default import DefaultPolicy
from repro.sim.runner import run_simulation


def test_standard_configs_are_deterministic(cifar10_workload):
    a = standard_configs(cifar10_workload, 10)
    b = standard_configs(cifar10_workload, 10)
    assert a == b


def test_standard_spec_domain_defaults(cifar10_workload, lunarlander_workload):
    assert standard_spec(cifar10_workload).num_machines == 4
    assert standard_spec(lunarlander_workload).num_machines == 15
    assert standard_spec(cifar10_workload, num_machines=9).num_machines == 9


def test_config_curves_shape(cifar10_workload):
    curves = config_curves(cifar10_workload, 5, n_epochs=20)
    assert len(curves) == 5
    assert all(len(c) == 20 for c in curves)


def test_final_metric_cdf(cifar10_workload):
    values, fractions = final_metric_cdf(cifar10_workload, 30)
    assert values.size == 30
    assert fractions[-1] == 1.0


def test_find_overtake_pair(cifar10_workload):
    pair = find_overtake_pair(cifar10_workload, pool_size=60)
    assert pair is not None
    early_leader, late_winner = pair
    assert late_winner[-1] > early_leader[-1]


def test_prediction_with_confidence_keys(cifar10_workload, fast_predictor):
    config = standard_configs(cifar10_workload, 1)[0]
    data = prediction_with_confidence(
        cifar10_workload, config, fast_predictor, observe_epochs=10
    )
    assert set(data) == {"observed", "true_future", "horizon", "mean", "std"}
    assert data["observed"].size == 10
    assert data["mean"].size == 110


def test_prediction_with_confidence_denormalizes_rl(
    lunarlander_workload, fast_predictor
):
    config = standard_configs(lunarlander_workload, 1)[0]
    data = prediction_with_confidence(
        lunarlander_workload, config, fast_predictor, observe_epochs=20
    )
    # Values are back on the raw reward scale.
    assert data["mean"].min() >= -500.0 - 1.0
    assert data["mean"].max() <= 300.0 + 1.0


@pytest.fixture(scope="module")
def small_pop_result(cifar10_workload, fast_predictor):
    configs = standard_configs(cifar10_workload, 20)
    policy = InstrumentedPOPPolicy()
    result = run_simulation(
        cifar10_workload,
        policy,
        configs=configs,
        spec=ExperimentSpec(
            num_machines=4, num_configs=20, seed=0, stop_on_target=False
        ),
        predictor=fast_predictor,
    )
    return result, policy


def test_instrumented_pop_logs_allocations(small_pop_result):
    _, policy = small_pop_result
    assert policy.allocation_log
    timestamp, confidences, threshold, slots = policy.allocation_log[-1]
    assert timestamp > 0
    assert 0.0 <= threshold <= 1.0
    assert slots >= 0
    curves = policy.slot_curves_at(timestamp)
    assert curves is not None
    assert policy.slot_curves_at(-1.0) is None


def test_job_duration_cdf(small_pop_result):
    result, _ = small_pop_result
    durations, fractions = job_duration_cdf(result)
    assert durations.size > 0
    assert np.all(durations >= 0)


def test_promising_ratio_timeline(small_pop_result):
    result, _ = small_pop_result
    times, ratios = promising_ratio_timeline(result, bucket_seconds=600)
    assert times.size == ratios.size
    assert np.all((ratios >= 0) & (ratios <= 1))


def test_suspend_overhead_stats(small_pop_result):
    result, _ = small_pop_result
    if not result.snapshots:
        pytest.skip("no suspends in this small run")
    stats = suspend_overhead_stats([result])
    assert stats.count == len(result.snapshots)
    assert stats.latency_p95 <= stats.latency_max


def test_suspend_overhead_stats_empty_rejected():
    with pytest.raises(ValueError, match="no suspends"):
        suspend_overhead_stats([])


def test_time_to_target_stats_uses_finished_at_fallback(
    cifar10_workload, fast_predictor
):
    configs = standard_configs(cifar10_workload, 4)
    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=2, num_configs=4, seed=0, stop_on_target=False
        ),
    )
    stats = time_to_target_stats([result])
    assert stats.minimum == result.finished_at


def test_run_standard_experiment_accepts_overrides(
    cifar10_workload, fast_predictor
):
    result = run_standard_experiment(
        cifar10_workload,
        DefaultPolicy(),
        num_configs=4,
        num_machines=2,
        tmax=1800.0,
        stop_on_target=False,
    )
    assert result.finished_at <= 1800.0
