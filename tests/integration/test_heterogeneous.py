"""Tests for heterogeneous machine speeds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import standard_configs
from repro.core.pop import POPPolicy
from repro.framework.experiment import ExperimentSpec
from repro.policies.default import DefaultPolicy
from repro.sim.runner import run_simulation


def test_spec_validation():
    with pytest.raises(ValueError, match="one entry per machine"):
        ExperimentSpec(num_machines=2, machine_speed_factors=(1.0,))
    with pytest.raises(ValueError, match="positive"):
        ExperimentSpec(num_machines=2, machine_speed_factors=(1.0, 0.0))


def test_faster_cluster_finishes_sooner(cifar10_workload):
    configs = standard_configs(cifar10_workload, 6)

    def run(factors):
        return run_simulation(
            cifar10_workload,
            DefaultPolicy(),
            configs=configs,
            spec=ExperimentSpec(
                num_machines=2,
                num_configs=6,
                seed=0,
                stop_on_target=False,
                machine_speed_factors=factors,
            ),
        )

    slow = run((1.0, 1.0))
    fast = run((2.0, 2.0))
    assert fast.finished_at < slow.finished_at * 0.6
    # Same work done, just faster.
    assert fast.epochs_trained == slow.epochs_trained


def test_fast_machine_records_shorter_epochs(cifar10_workload):
    configs = standard_configs(cifar10_workload, 2)
    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=2,
            num_configs=2,
            seed=0,
            stop_on_target=False,
            machine_speed_factors=(1.0, 4.0),
        ),
    )
    by_machine = {}
    for job in result.jobs:
        for stat in job.history:
            by_machine.setdefault(stat.machine_id, []).append(stat.duration)
    means = {m: np.mean(v) for m, v in by_machine.items()}
    assert means["machine-01"] < means["machine-00"] / 2.5


def test_pop_copes_with_heterogeneity(cifar10_workload, fast_predictor):
    """POP's ERT uses per-job measured epoch durations, so moderate
    heterogeneity must not break the search."""
    configs = standard_configs(cifar10_workload, 20)
    result = run_simulation(
        cifar10_workload,
        POPPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=4,
            num_configs=20,
            seed=0,
            machine_speed_factors=(0.5, 1.0, 1.0, 2.0),
        ),
        predictor=fast_predictor,
    )
    assert result.epochs_trained > 0
    assert result.best_metric is not None
