"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_run_simulated(capsys):
    code = main(
        [
            "run",
            "--workload", "cifar10",
            "--policy", "bandit",
            "--configs", "10",
            "--machines", "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "policy          : bandit" in out
    assert "epochs trained" in out


def test_run_no_stop_on_target(capsys):
    code = main(
        [
            "run",
            "--workload", "cifar10",
            "--policy", "default",
            "--configs", "4",
            "--machines", "2",
            "--no-stop-on-target",
            "--tmax-hours", "2",
        ]
    )
    assert code == 0
    assert "reached target  : False" in capsys.readouterr().out


def test_run_grid_generator(capsys):
    code = main(
        [
            "run",
            "--workload", "mlp",
            "--policy", "default",
            "--generator", "grid",
            "--configs", "4",
            "--machines", "2",
            "--no-stop-on-target",
            "--tmax-hours", "1",
        ]
    )
    assert code == 0


def test_record_and_replay_roundtrip(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert (
        main(
            [
                "record-trace",
                "--workload", "cifar10",
                "--configs", "6",
                "--out", str(trace_path),
            ]
        )
        == 0
    )
    assert trace_path.exists()
    assert (
        main(
            [
                "replay",
                "--trace", str(trace_path),
                "--policy", "default",
                "--machines", "2",
                "--orders", "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "order 0" in out and "order 1" in out


def test_unknown_policy_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--policy", "nonsense"])
