"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_run_simulated(capsys):
    code = main(
        [
            "run",
            "--workload", "cifar10",
            "--policy", "bandit",
            "--configs", "10",
            "--machines", "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "policy          : bandit" in out
    assert "epochs trained" in out


def test_run_no_stop_on_target(capsys):
    code = main(
        [
            "run",
            "--workload", "cifar10",
            "--policy", "default",
            "--configs", "4",
            "--machines", "2",
            "--no-stop-on-target",
            "--tmax-hours", "2",
        ]
    )
    assert code == 0
    assert "reached target  : False" in capsys.readouterr().out


def test_run_grid_generator(capsys):
    code = main(
        [
            "run",
            "--workload", "mlp",
            "--policy", "default",
            "--generator", "grid",
            "--configs", "4",
            "--machines", "2",
            "--no-stop-on-target",
            "--tmax-hours", "1",
        ]
    )
    assert code == 0


def test_record_and_replay_roundtrip(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert (
        main(
            [
                "record-trace",
                "--workload", "cifar10",
                "--configs", "6",
                "--out", str(trace_path),
            ]
        )
        == 0
    )
    assert trace_path.exists()
    assert (
        main(
            [
                "replay",
                "--trace", str(trace_path),
                "--policy", "default",
                "--machines", "2",
                "--orders", "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "order 0" in out and "order 1" in out


def test_unknown_policy_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--policy", "nonsense"])


def test_run_json_emits_machine_readable_result(capsys):
    code = main(
        [
            "run",
            "--workload", "cifar10",
            "--policy", "bandit",
            "--configs", "6",
            "--machines", "2",
            "--json",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    payload = json.loads(captured.out)  # stdout is exactly one JSON doc
    assert payload["policy"] == "bandit"
    assert payload["epochs_trained"] > 0
    assert "policy          : bandit" in captured.err  # summary on stderr


def test_save_result_and_report_roundtrip(tmp_path, capsys):
    result_path = tmp_path / "result.json"
    code = main(
        [
            "run",
            "--workload", "cifar10",
            "--policy", "default",
            "--configs", "4",
            "--machines", "2",
            "--no-stop-on-target",
            "--tmax-hours", "2",
            "--save-result", str(result_path),
        ]
    )
    assert code == 0
    assert result_path.exists()
    capsys.readouterr()
    assert main(["report", "--result", str(result_path)]) == 0
    assert capsys.readouterr().out.strip()


def test_missing_report_file_exits_3(capsys):
    assert main(["report", "--result", "/nonexistent/result.json"]) == 3
    assert "error:" in capsys.readouterr().err


def test_service_verbs_roundtrip(tmp_path, capsys):
    """submit -> watch -> status through main(argv) against a live
    in-process daemon, then status --root against the store offline."""
    from repro.service.daemon import ExperimentService

    root = tmp_path / "runs"
    service = ExperimentService(root, port=0, workers=1)
    service.start()
    try:
        code = main(
            [
                "submit",
                "--url", service.url,
                "--workload", "cifar10",
                "--policy", "bandit",
                "--configs", "4",
                "--machines", "2",
                "--checkpoint-every", "5",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        exp_id = captured.out.strip()  # bare id on stdout for scripts
        assert exp_id.startswith("exp-")
        assert "submitted" in captured.err

        code = main(
            ["watch", exp_id, "--url", service.url,
             "--poll", "0.1", "--timeout", "300"]
        )
        assert code == 0
        assert "completed" in capsys.readouterr().out

        assert main(["status", "--url", service.url]) == 0
        assert exp_id in capsys.readouterr().out

        assert main(["status", exp_id, "--url", service.url]) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "completed"
    finally:
        service.stop()

    # the store outlives the daemon
    assert main(["status", "--root", str(root)]) == 0
    offline = capsys.readouterr().out
    assert exp_id in offline and "completed" in offline


def test_status_requires_exactly_one_source(capsys):
    assert main(["status"]) == 2
    assert main(["status", "--url", "http://x", "--root", "y"]) == 2
    assert "exactly one" in capsys.readouterr().err


def test_submit_unreachable_daemon_exits_3(capsys):
    code = main(
        ["submit", "--url", "http://127.0.0.1:1", "--configs", "2"]
    )
    assert code == 3
    assert "cannot reach" in capsys.readouterr().err


def test_cli_resume_completes_interrupted_experiment(tmp_path, capsys):
    from repro.service.store import RunStore
    from repro.service.submission import Submission

    root = tmp_path / "runs"
    store = RunStore(root)
    record = store.submit(
        Submission(
            workload="cifar10", policy="bandit", configs=4,
            machines=2, checkpoint_every=5,
        )
    )
    store.claim_next_queued()  # claimed, then the "daemon dies"
    store.close()

    assert main(["resume", record.id, "--root", str(root)]) == 0
    captured = capsys.readouterr()
    assert "completed" in captured.out
    assert record.id in captured.err  # recovery context goes to stderr


def test_cli_resume_unknown_id_exits_3(tmp_path, capsys):
    assert main(["resume", "exp-missing", "--root", str(tmp_path)]) == 3
    assert "unknown experiment" in capsys.readouterr().err
