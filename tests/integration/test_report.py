"""Tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import standard_configs
from repro.analysis.report import render_report, report_from_json
from repro.core.pop import POPPolicy
from repro.framework.experiment import ExperimentSpec
from repro.sim.runner import run_simulation


@pytest.fixture(scope="module")
def result(cifar10_workload, fast_predictor):
    configs = standard_configs(cifar10_workload, 10)
    return run_simulation(
        cifar10_workload,
        POPPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=3, num_configs=10, seed=0, stop_on_target=False
        ),
        predictor=fast_predictor,
    )


def test_render_report_from_result(result):
    report = render_report(result)
    assert report.startswith("# Experiment report — policy `pop`")
    assert "## Job outcomes" in report
    assert "## Top" in report
    assert "epochs trained" in report


def test_render_report_from_dict(result):
    report = render_report(result.to_dict())
    assert "policy `pop`" in report


def test_report_from_json_roundtrip(result, tmp_path):
    path = tmp_path / "r.json"
    result.save_json(path)
    report = report_from_json(path)
    assert "# Experiment report" in report
    # sparklines present for top jobs
    assert "▁" in report or "█" in report


def test_report_includes_suspends_when_present(result):
    report = render_report(result)
    if result.snapshots:
        assert "## Suspend/resume overhead" in report


def test_cli_report(result, tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "r.json"
    result.save_json(path)
    assert main(["report", "--result", str(path)]) == 0
    assert "# Experiment report" in capsys.readouterr().out
