"""Scheduler-level invariant fuzzing.

Runs experiments under a randomly-deciding SAP and checks the global
invariants any correct scheduler must maintain, regardless of how
erratic the policy's decisions are.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import standard_configs
from repro.framework.events import Decision, IterationFinished, LifecycleKind
from repro.framework.experiment import ExperimentSpec
from repro.framework.job import JobState
from repro.policies.base import DefaultAllocationMixin, SchedulingPolicy
from repro.sim.runner import run_simulation


class ChaoticPolicy(DefaultAllocationMixin, SchedulingPolicy):
    """Makes pseudo-random (but seeded) decisions every epoch."""

    name = "chaotic"

    def __init__(self, seed: int, suspend_weight=0.1, terminate_weight=0.05):
        super().__init__()
        self._rng = np.random.default_rng(seed)
        self._weights = [
            1.0 - suspend_weight - terminate_weight,
            suspend_weight,
            terminate_weight,
        ]

    def on_iteration_finish(self, event: IterationFinished) -> Decision:
        return self._rng.choice(
            [Decision.CONTINUE, Decision.SUSPEND, Decision.TERMINATE],
            p=self._weights,
        )


def _run_chaotic(workload, seed, machines=3, n_configs=8):
    configs = standard_configs(workload, n_configs)
    return run_simulation(
        workload,
        ChaoticPolicy(seed),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=machines,
            num_configs=n_configs,
            seed=0,
            stop_on_target=False,
            tmax=12 * 3600.0,
        ),
    )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_invariants_under_chaotic_policy(seed):
    from repro.workloads.cifar10 import Cifar10Workload

    workload = _WORKLOAD
    result = _run_chaotic(workload, seed)

    # 1. Per-job epochs are strictly increasing.
    for job in result.jobs:
        epochs = [stat.epoch for stat in job.history]
        assert epochs == sorted(set(epochs))

    # 2. Terminal states only (tmax aside, chaotic never stops early).
    for job in result.jobs:
        assert job.state in (
            JobState.COMPLETED,
            JobState.TERMINATED,
            JobState.SUSPENDED,  # tmax can strand suspended jobs
            JobState.PENDING,
            JobState.RUNNING,
        )

    # 3. Lifecycle timestamps are monotone.
    times = [event.timestamp for event in result.lifecycle]
    assert times == sorted(times)

    # 4. Every resume follows a suspend of the same job.
    suspended_at = {}
    for event in result.lifecycle:
        if event.kind is LifecycleKind.SUSPENDED:
            suspended_at[event.job_id] = event.timestamp
        elif event.kind is LifecycleKind.RESUMED:
            assert event.job_id in suspended_at
            assert event.timestamp >= suspended_at[event.job_id]

    # 5. Suspends produced snapshots.
    suspend_events = [
        e for e in result.lifecycle if e.kind is LifecycleKind.SUSPENDED
    ]
    assert len(result.snapshots) == len(suspend_events)

    # 6. No metric exceeds the workload's possible range.
    for job in result.jobs:
        for value in job.metrics:
            assert 0.0 <= value <= 1.0


_WORKLOAD = None


def setup_module(module):
    from repro.workloads.cifar10 import Cifar10Workload

    global _WORKLOAD
    _WORKLOAD = Cifar10Workload()


def test_simulation_is_deterministic():
    """Identical inputs produce identical results, event for event."""
    a = _run_chaotic(_WORKLOAD, seed=5)
    b = _run_chaotic(_WORKLOAD, seed=5)
    assert a.epochs_trained == b.epochs_trained
    assert a.finished_at == b.finished_at
    assert [e.kind for e in a.lifecycle] == [e.kind for e in b.lifecycle]
    assert [e.timestamp for e in a.lifecycle] == [
        e.timestamp for e in b.lifecycle
    ]


def test_chaotic_policy_with_failures_keeps_invariants():
    configs = standard_configs(_WORKLOAD, 8)
    result = run_simulation(
        _WORKLOAD,
        ChaoticPolicy(7),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=3,
            num_configs=8,
            seed=0,
            stop_on_target=False,
            tmax=12 * 3600.0,
            machine_mtbf=3000.0,
            machine_recovery_seconds=300.0,
            checkpoint_interval=7,
        ),
    )
    assert result.machine_failures > 0
    for job in result.jobs:
        epochs = [stat.epoch for stat in job.history]
        assert epochs == sorted(set(epochs))
