"""Kill-and-resume: a SIGKILLed study resumes to an identical report.

The contract under test (docs/lab.md): cell artifacts are journaled
atomically as they finish, so a study killed mid-flight loses at most
the in-flight cells; resuming executes only the missing ones (archived
cells are not rewritten — pinned via nanosecond mtimes) and the final
report is byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.lab import CellStore, StudySpec

SPEC = {
    "name": "kill-resume-study",
    "policies": ["default", "bandit"],
    "workloads": ["mlp"],
    "machines": [2],
    "seeds": [0, 1, 2, 3, 4],
    "num_configs": 6,
    "tmax_hours": 1.0,
    "stop_on_target": False,
    "baseline": {"policy": "default"},
    "metric": "best_metric",
}
TOTAL_CELLS = 10


def test_sigkill_mid_study_then_resume(tmp_path):
    spec_path = tmp_path / "study.json"
    spec_path.write_text(json.dumps(SPEC))

    # Reference: the uninterrupted run.
    reference_dir = tmp_path / "uninterrupted"
    assert main(
        [
            "sweep", "run", "--spec", str(spec_path),
            "--out", str(reference_dir), "--max-workers", "1",
        ]
    ) == 0
    reference_md = (reference_dir / "report.md").read_bytes()
    reference_json = (reference_dir / "report.json").read_bytes()

    # Interrupted: same study in a subprocess, SIGKILLed once the
    # first cells have landed but before the study completes.
    victim_dir = tmp_path / "interrupted"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "sweep", "run",
            "--spec", str(spec_path),
            "--out", str(victim_dir), "--max-workers", "1",
        ],
        env=os.environ.copy(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    store = CellStore(victim_dir)
    deadline = time.monotonic() + 120.0
    try:
        while len(store.completed_keys()) < 1:
            if process.poll() is not None:
                pytest.fail("study finished before it could be killed")
            if time.monotonic() > deadline:
                pytest.fail("no cell completed within the deadline")
            time.sleep(0.005)
        process.send_signal(signal.SIGKILL)
    finally:
        process.wait(timeout=30)

    survivors = store.completed_keys()
    assert 1 <= len(survivors) < TOTAL_CELLS, survivors
    assert not (victim_dir / "report.md").exists()
    # every surviving artifact is complete, valid JSON
    for key in survivors:
        assert store.load_cell(key)["key"] == key
    stamps = {key: store.mtime_ns(key) for key in survivors}
    journal_before = [entry["key"] for entry in store.journal()]

    # Resume from the store alone (no spec needed) and compare.
    assert main(["sweep", "resume", "--out", str(victim_dir)]) == 0

    assert (victim_dir / "report.md").read_bytes() == reference_md
    assert (victim_dir / "report.json").read_bytes() == reference_json
    # completed cells were skipped, not re-executed
    assert {key: store.mtime_ns(key) for key in survivors} == stamps
    resumed_journal = [entry["key"] for entry in store.journal()]
    assert resumed_journal[: len(journal_before)] == journal_before
    assert len(resumed_journal) == TOTAL_CELLS
    assert set(resumed_journal) == {
        cell.key() for cell in StudySpec.from_dict(SPEC).cells()
    }
    assert len(set(resumed_journal)) == TOTAL_CELLS  # no duplicates
