"""Tests for the backend-agnostic scheduler core."""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.framework.events import Decision, IterationFinished, LifecycleKind
from repro.framework.experiment import ExperimentSpec
from repro.framework.job import JobState
from repro.framework.scheduler import FollowUpAction, HyperDriveScheduler
from repro.generators.space import SearchSpace, Uniform
from repro.policies.base import DefaultAllocationMixin, SchedulingPolicy
from repro.workloads.base import DomainSpec, EpochResult, TrainingRun, Workload


class ScriptedRun(TrainingRun):
    """Yields a scripted metric sequence; duration constant."""

    def __init__(self, config, metrics, duration=10.0):
        self._config = dict(config)
        self._metrics = list(metrics)
        self._duration = duration
        self._epoch = 0

    @property
    def config(self):
        return dict(self._config)

    @property
    def epochs_completed(self):
        return self._epoch

    @property
    def finished(self):
        return self._epoch >= len(self._metrics)

    def step(self):
        if self.finished:
            raise RuntimeError("finished")
        metric = self._metrics[self._epoch]
        self._epoch += 1
        return EpochResult(self._epoch, self._duration, metric, self.finished)

    def snapshot_state(self):
        return {"epoch": self._epoch}

    def restore_state(self, state):
        self._epoch = int(state["epoch"])


class ScriptedWorkload(Workload):
    def __init__(self, scripts: Dict[str, List[float]], max_epochs=4):
        self._scripts = scripts
        self._space = SearchSpace([Uniform("x", 0.0, 1.0)])
        self._domain = DomainSpec(
            kind="supervised",
            metric_name="validation_accuracy",
            target=0.9,
            kill_threshold=0.15,
            random_performance=0.1,
            max_epochs=max_epochs,
            eval_boundary=2,
        )

    @property
    def space(self):
        return self._space

    @property
    def domain(self):
        return self._domain

    def create_run(self, config, seed=0):
        return ScriptedRun(config, self._scripts[config["name"]])


class ScriptedPolicy(DefaultAllocationMixin, SchedulingPolicy):
    """Returns pre-programmed decisions keyed by (job, epoch)."""

    name = "scripted"

    def __init__(self, decisions=None):
        super().__init__()
        self.decisions = decisions or {}
        self.events = []

    def on_iteration_finish(self, event: IterationFinished) -> Decision:
        self.events.append((event.job_id, event.epoch))
        return self.decisions.get((event.job_id, event.epoch), Decision.CONTINUE)


def build(scripts, decisions=None, machines=1, stop_on_target=True, max_epochs=4):
    workload = ScriptedWorkload(scripts, max_epochs=max_epochs)
    clock = {"now": 0.0}
    spec = ExperimentSpec(
        num_machines=machines,
        num_configs=len(scripts),
        seed=0,
        stop_on_target=stop_on_target,
    )
    scheduler = HyperDriveScheduler(
        workload=workload,
        policy=ScriptedPolicy(decisions),
        spec=spec,
        clock=lambda: clock["now"],
    )
    for name in scripts:
        scheduler.add_job(name, {"name": name, "x": 0.5})
    return scheduler, clock


def drive_epoch(scheduler, machine_id):
    agent = scheduler.agents[machine_id]
    result = agent.train_epoch()
    return scheduler.process_epoch(machine_id, result)


def test_begin_starts_initial_jobs():
    scheduler, _ = build({"a": [0.2] * 4, "b": [0.2] * 4}, machines=2)
    scheduler.begin()
    started = scheduler.take_started_machines()
    assert len(started) == 2
    assert scheduler.take_started_machines() == []  # buffer drained
    assert scheduler.job_manager.get("a").state is JobState.RUNNING


def test_continue_flow():
    scheduler, _ = build({"a": [0.2] * 4})
    scheduler.begin()
    machine = scheduler.take_started_machines()[0]
    followup = drive_epoch(scheduler, machine)
    assert followup.action is FollowUpAction.NEXT_EPOCH
    assert scheduler.result.epochs_trained == 1


def test_completion_flow():
    scheduler, _ = build({"a": [0.2, 0.2]}, max_epochs=2)
    scheduler.begin()
    machine = scheduler.take_started_machines()[0]
    drive_epoch(scheduler, machine)
    followup = drive_epoch(scheduler, machine)
    assert followup.action is FollowUpAction.RELEASE_MACHINE
    assert scheduler.job_manager.get("a").state is JobState.COMPLETED
    kinds = [e.kind for e in scheduler.result.lifecycle]
    assert LifecycleKind.COMPLETED in kinds


def test_target_stops_experiment():
    scheduler, clock = build({"a": [0.95] + [0.2] * 3})
    scheduler.begin()
    machine = scheduler.take_started_machines()[0]
    clock["now"] = 10.0
    followup = drive_epoch(scheduler, machine)
    assert followup.action is FollowUpAction.EXPERIMENT_DONE
    assert scheduler.done
    assert scheduler.result.reached_target
    assert scheduler.result.time_to_target == 10.0


def test_stop_on_target_disabled():
    scheduler, _ = build({"a": [0.95] * 4}, stop_on_target=False)
    scheduler.begin()
    machine = scheduler.take_started_machines()[0]
    followup = drive_epoch(scheduler, machine)
    assert followup.action is FollowUpAction.NEXT_EPOCH
    assert not scheduler.done
    assert scheduler.result.best_metric == pytest.approx(0.95)


def test_terminate_flow_drops_snapshot_and_frees_machine():
    scheduler, _ = build(
        {"a": [0.2] * 4, "b": [0.3] * 4},
        decisions={("a", 2): Decision.TERMINATE},
    )
    scheduler.begin()
    machine = scheduler.take_started_machines()[0]
    drive_epoch(scheduler, machine)
    followup = drive_epoch(scheduler, machine)
    assert followup.action is FollowUpAction.RELEASE_MACHINE
    assert followup.delay == 0.0
    assert scheduler.job_manager.get("a").state is JobState.TERMINATED
    # releasing triggers allocation of job b
    scheduler.machine_released(machine)
    assert scheduler.take_started_machines() == [machine]
    assert scheduler.job_manager.get("b").state is JobState.RUNNING


def test_suspend_flow_snapshots_and_delays_release():
    scheduler, _ = build(
        {"a": [0.2] * 4, "b": [0.3] * 4},
        decisions={("a", 2): Decision.SUSPEND},
    )
    scheduler.begin()
    machine = scheduler.take_started_machines()[0]
    drive_epoch(scheduler, machine)
    followup = drive_epoch(scheduler, machine)
    assert followup.action is FollowUpAction.RELEASE_MACHINE
    assert followup.delay > 0.0  # suspend latency
    job = scheduler.job_manager.get("a")
    assert job.state is JobState.SUSPENDED
    assert scheduler.appstat_db.load_snapshot("a") is not None
    assert len(scheduler.result.snapshots) == 1


def test_suspend_resume_preserves_epoch_position():
    scheduler, _ = build(
        {"a": [0.2, 0.3, 0.4, 0.5], "b": [0.1] * 4},
        decisions={("a", 2): Decision.SUSPEND, ("b", 2): Decision.TERMINATE},
    )
    scheduler.begin()
    machine = scheduler.take_started_machines()[0]
    drive_epoch(scheduler, machine)
    drive_epoch(scheduler, machine)  # suspend a at epoch 2
    scheduler.machine_released(machine)
    assert scheduler.take_started_machines() == [machine]  # b starts
    drive_epoch(scheduler, machine)
    drive_epoch(scheduler, machine)  # b terminated at epoch 2
    scheduler.machine_released(machine)
    assert scheduler.take_started_machines() == [machine]  # a resumes
    result = scheduler.agents[machine].train_epoch()
    assert result.epoch == 3
    assert result.metric == pytest.approx(0.4)


def test_epoch_from_idle_machine_rejected():
    scheduler, _ = build({"a": [0.2] * 4}, machines=2)
    scheduler.begin()
    busy = scheduler.take_started_machines()[0]
    idle = next(
        m for m in scheduler.resource_manager.machine_ids if m != busy
    )
    with pytest.raises(RuntimeError, match="idle machine"):
        scheduler.process_epoch(idle, EpochResult(1, 10.0, 0.5, False))


def test_finalize_collects_results():
    scheduler, clock = build({"a": [0.2, 0.2]}, max_epochs=2)
    scheduler.begin()
    machine = scheduler.take_started_machines()[0]
    drive_epoch(scheduler, machine)
    drive_epoch(scheduler, machine)
    clock["now"] = 99.0
    result = scheduler.finalize()
    assert result.finished_at == 99.0
    assert len(result.jobs) == 1
    assert result.epochs_trained == 2
    assert result.summary()["policy"] == "scripted"


def test_pool_timeline_recorded():
    scheduler, _ = build({"a": [0.2] * 4})
    scheduler.begin()
    machine = scheduler.take_started_machines()[0]
    drive_epoch(scheduler, machine)
    assert len(scheduler.result.pool_timeline) == 1
    snapshot = scheduler.result.pool_timeline[0]
    assert snapshot.active == 1
    assert snapshot.running == 1


# --------------------------------------------------------------- resize


def test_resize_before_begin_trims_pool_without_allocating():
    """A broker setup hook shrinks a fresh scheduler to its granted
    leases; the policy is unbound until begin(), so resize() must not
    trigger an allocation round."""
    scheduler, _ = build({"a": [0.2] * 4, "b": [0.2] * 4}, machines=4)
    assert scheduler.resize(2) == 2
    scheduler.begin()
    assert len(scheduler.take_started_machines()) == 2


def test_resize_shrink_drains_idle_machine_and_logs():
    scheduler, _ = build({"a": [0.2] * 4}, machines=2)
    scheduler.begin()  # one job -> one busy, one idle machine
    assert scheduler.resize(1) == 1
    kinds = [e.kind for e in scheduler.result.lifecycle]
    assert LifecycleKind.MACHINE_DRAINED in kinds
    rm = scheduler.resource_manager
    assert rm.num_in_service == 1
    assert rm.num_drained == 1


def test_resize_shrink_evicts_busy_machine_at_epoch_boundary():
    scheduler, _ = build({"a": [0.2] * 4, "b": [0.2] * 4}, machines=2)
    scheduler.begin()
    machines = scheduler.take_started_machines()
    assert len(machines) == 2
    # Both machines busy: the shrink cannot drain anything yet.
    assert scheduler.resize(1) == 2
    victim = sorted(machines)[-1]  # newest-named busy machine
    followup = drive_epoch(scheduler, victim)
    # The boundary eviction suspends the job (lossless) and frees the
    # slot without consulting the policy.
    assert followup.action is FollowUpAction.RELEASE_MACHINE
    evicted_job = "b" if victim == machines[1] else "a"
    assert scheduler.job_manager.get(evicted_job).state is JobState.SUSPENDED
    scheduler.machine_released(victim)
    rm = scheduler.resource_manager
    assert rm.is_drained(victim)
    assert rm.num_in_service == 1
    kinds = [e.kind for e in scheduler.result.lifecycle]
    assert LifecycleKind.SUSPENDED in kinds
    # The survivor keeps training.
    survivor = next(m for m in machines if m != victim)
    assert drive_epoch(scheduler, survivor).action is FollowUpAction.NEXT_EPOCH


def test_resize_grow_returns_machines_and_allocates():
    scheduler, _ = build({"a": [0.2] * 4, "b": [0.2] * 4}, machines=2)
    scheduler.resize(1)
    scheduler.begin()
    assert len(scheduler.take_started_machines()) == 1
    assert scheduler.resize(2) == 2
    kinds = [e.kind for e in scheduler.result.lifecycle]
    assert LifecycleKind.MACHINE_RETURNED in kinds
    # The grow's allocation round starts the queued job immediately.
    assert len(scheduler.take_started_machines()) == 1
    assert scheduler.job_manager.get("b").state is JobState.RUNNING


def test_resize_unmarks_eviction_on_regrow():
    scheduler, _ = build({"a": [0.2] * 4, "b": [0.2] * 4}, machines=2)
    scheduler.begin()
    machines = scheduler.take_started_machines()
    scheduler.resize(1)  # both busy -> one marked for eviction
    scheduler.resize(2)  # regrow before any boundary: unmark
    for machine_id in machines:
        followup = drive_epoch(scheduler, machine_id)
        assert followup.action is FollowUpAction.NEXT_EPOCH
    assert scheduler.job_manager.get("a").state is JobState.RUNNING
    assert scheduler.job_manager.get("b").state is JobState.RUNNING


def test_resize_clamps_to_pool_bounds():
    scheduler, _ = build({"a": [0.2] * 4}, machines=2)
    scheduler.begin()
    assert scheduler.resize(99) == 2  # cannot exceed construction size
