"""Tests for ExperimentSpec validation and result archival."""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import standard_configs
from repro.framework.experiment import ExperimentSpec
from repro.policies.default import DefaultPolicy
from repro.sim.runner import run_simulation


def test_spec_defaults_are_paper_values():
    spec = ExperimentSpec()
    assert spec.num_machines == 4
    assert spec.num_configs == 100
    assert spec.overlap_prediction


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"num_machines": 0}, "num_machines"),
        ({"num_configs": 0}, "num_configs"),
        ({"tmax": 0.0}, "tmax"),
        ({"prediction_seconds": -1.0}, "prediction_seconds"),
        ({"prediction_contention": 1.0}, "prediction_contention"),
    ],
)
def test_spec_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        ExperimentSpec(**kwargs)


def test_result_to_dict_and_save(cifar10_workload, tmp_path):
    configs = standard_configs(cifar10_workload, 4)
    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=2, num_configs=4, seed=0, stop_on_target=False,
        ),
    )
    record = result.to_dict()
    assert record["policy"] == "default"
    assert len(record["jobs"]) == 4
    for job in record["jobs"]:
        assert len(job["metrics"]) == len(job["durations"])
        assert job["state"] == "completed"
    assert record["spec"]["num_machines"] == 2

    path = tmp_path / "result.json"
    result.save_json(path)
    loaded = json.loads(path.read_text())
    assert loaded["epochs_trained"] == result.epochs_trained
    assert loaded["jobs"][0]["job_id"] == record["jobs"][0]["job_id"]


def test_job_training_times_property(cifar10_workload):
    configs = standard_configs(cifar10_workload, 2)
    result = run_simulation(
        cifar10_workload,
        DefaultPolicy(),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=2, num_configs=2, seed=0, tmax=3600.0,
            stop_on_target=False,
        ),
    )
    times = result.job_training_times
    assert set(times) == {job.job_id for job in result.jobs}
    assert all(v > 0 for v in times.values())
