"""Tests for the SAP interface plumbing."""

from __future__ import annotations

import pytest

from repro.framework.appstat_db import AppStatDB
from repro.framework.events import Decision, IterationFinished
from repro.framework.job import Job
from repro.framework.job_manager import JobManager
from repro.framework.policy_api import (
    DefaultAllocationMixin,
    PolicyContext,
    SchedulingPolicy,
)
from repro.framework.resource_manager import ResourceManager
from repro.workloads.base import DomainSpec

RL_DOMAIN = DomainSpec(
    kind="reinforcement",
    metric_name="reward",
    target=200.0,
    kill_threshold=-100.0,
    random_performance=-200.0,
    max_epochs=200,
    eval_boundary=20,
    r_min=-500.0,
    r_max=300.0,
)


class Greedy(DefaultAllocationMixin, SchedulingPolicy):
    name = "greedy"

    def on_iteration_finish(self, event: IterationFinished) -> Decision:
        return Decision.CONTINUE


def make_context(machines=2, stop_experiment=None):
    jm = JobManager()
    rm = ResourceManager(machines)
    started = []

    def start(job_id, machine_id):
        jm.start_job(job_id, machine_id)
        started.append((job_id, machine_id))

    ctx = PolicyContext(
        job_manager=jm,
        resource_manager=rm,
        appstat_db=AppStatDB(),
        domain=RL_DOMAIN,
        tmax=3600.0,
        target=200.0,
        now=lambda: 0.0,
        start=start,
        predict=lambda job_id, n: (_ for _ in ()).throw(ValueError("none")),
        stop_experiment=stop_experiment,
    )
    return ctx, started


def test_normalized_target_uses_domain():
    ctx, _ = make_context()
    assert ctx.normalized_target == pytest.approx((200.0 + 500.0) / 800.0)


def test_stop_experiment_defaults_to_none():
    ctx, _ = make_context()
    assert ctx.stop_experiment is None


def test_mixin_stops_at_machine_exhaustion():
    ctx, started = make_context(machines=2)
    for i in range(5):
        ctx.job_manager.add_job(Job(job_id=f"j{i}", config={}))
    policy = Greedy()
    policy.bind(ctx)
    policy.allocate_jobs()
    assert len(started) == 2
    assert ctx.resource_manager.num_idle == 0
    # A second round with no free machines is a no-op.
    policy.allocate_jobs()
    assert len(started) == 2


def test_mixin_stops_at_job_exhaustion():
    ctx, started = make_context(machines=4)
    ctx.job_manager.add_job(Job(job_id="only", config={}))
    policy = Greedy()
    policy.bind(ctx)
    policy.allocate_jobs()
    assert started == [("only", "machine-00")]
    # One machine reserved, three still idle.
    assert ctx.resource_manager.num_idle == 3


def test_application_stat_default_is_noop():
    policy = Greedy()
    ctx, _ = make_context()
    policy.bind(ctx)
    # Must not raise even though the policy never overrode it.
    from repro.framework.events import AppStat

    policy.application_stat(
        AppStat("j", 1, -150.0, 30.0, 0.0, "machine-00")
    )
