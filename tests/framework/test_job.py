"""Tests for the Job state machine and history."""

from __future__ import annotations

import pytest

from repro.framework.events import AppStat
from repro.framework.job import IllegalTransitionError, Job, JobState


def make_stat(job_id="j0", epoch=1, metric=0.5, duration=60.0):
    return AppStat(
        job_id=job_id,
        epoch=epoch,
        metric=metric,
        duration=duration,
        timestamp=epoch * 60.0,
        machine_id="machine-00",
    )


@pytest.fixture()
def job():
    return Job(job_id="j0", config={"lr": 0.1})


def test_initial_state(job):
    assert job.state is JobState.PENDING
    assert job.active
    assert job.epochs_completed == 0
    assert job.best_metric is None
    assert job.latest_metric is None
    assert job.mean_epoch_duration is None


def test_legal_lifecycle(job):
    job.transition(JobState.RUNNING)
    job.transition(JobState.SUSPENDED)
    job.transition(JobState.RUNNING)
    job.transition(JobState.COMPLETED)
    assert not job.active


def test_terminate_from_any_live_state():
    for path in ([], [JobState.RUNNING], [JobState.RUNNING, JobState.SUSPENDED]):
        job = Job(job_id="j", config={})
        for state in path:
            job.transition(state)
        job.transition(JobState.TERMINATED)
        assert not job.active


@pytest.mark.parametrize(
    "terminal", [JobState.TERMINATED, JobState.COMPLETED]
)
def test_terminal_states_are_final(terminal):
    job = Job(job_id="j", config={})
    job.transition(JobState.RUNNING)
    job.transition(terminal)
    for target in JobState:
        with pytest.raises(IllegalTransitionError):
            job.transition(target)


def test_illegal_transitions(job):
    with pytest.raises(IllegalTransitionError):
        job.transition(JobState.SUSPENDED)  # pending -> suspended
    with pytest.raises(IllegalTransitionError):
        job.transition(JobState.COMPLETED)  # pending -> completed


def test_record_history(job):
    job.record(make_stat(epoch=1, metric=0.2))
    job.record(make_stat(epoch=2, metric=0.5, duration=30.0))
    assert job.epochs_completed == 2
    assert job.metrics == [0.2, 0.5]
    assert job.best_metric == 0.5
    assert job.latest_metric == 0.5
    assert job.mean_epoch_duration == pytest.approx(45.0)
    assert job.total_training_time == pytest.approx(90.0)


def test_record_rejects_wrong_job(job):
    with pytest.raises(ValueError, match="recorded on job"):
        job.record(make_stat(job_id="other"))


def test_record_rejects_non_monotonic_epochs(job):
    job.record(make_stat(epoch=3))
    with pytest.raises(ValueError, match="non-monotonic"):
        job.record(make_stat(epoch=3))
    with pytest.raises(ValueError, match="non-monotonic"):
        job.record(make_stat(epoch=2))


def test_best_metric_keeps_peak(job):
    job.record(make_stat(epoch=1, metric=0.6))
    job.record(make_stat(epoch=2, metric=0.3))
    assert job.best_metric == 0.6
    assert job.latest_metric == 0.3
