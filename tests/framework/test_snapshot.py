"""Tests for snapshots and their cost models."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.framework.snapshot import (
    CRIU_COST_MODEL,
    SNAPSHOT_PICKLE_PROTOCOL,
    SUPERVISED_COST_MODEL,
    Snapshot,
    SnapshotCostModel,
    cost_model_for_domain,
)


def test_cost_model_validation():
    with pytest.raises(ValueError, match="latency"):
        SnapshotCostModel(0.2, 0.1, 1.0, 1.0, 2.0, 3.0)
    with pytest.raises(ValueError, match="size"):
        SnapshotCostModel(0.1, 0.2, 1.0, 3.0, 2.0, 3.0)


def test_supervised_model_matches_paper_statistics():
    """§6.2.3: mean latency ≈ 158 ms, p95 ≈ 219 ms, max ≤ 1.12 s;
    size mean ≈ 358 KB, max ≤ 686 KB."""
    rng = np.random.default_rng(0)
    latencies = np.array(
        [SUPERVISED_COST_MODEL.sample_latency(rng) for _ in range(5000)]
    )
    sizes = np.array([SUPERVISED_COST_MODEL.sample_size(rng) for _ in range(5000)])
    assert 0.10 < latencies.mean() < 0.22
    assert 0.15 < np.percentile(latencies, 95) < 0.30
    assert latencies.max() <= 1.12
    assert 250e3 < sizes.mean() < 470e3
    assert sizes.max() <= 686.06e3


def test_criu_model_matches_fig10_bounds():
    """Fig 10: RL snapshots up to 22.36 s and 43.75 MB."""
    rng = np.random.default_rng(1)
    latencies = np.array([CRIU_COST_MODEL.sample_latency(rng) for _ in range(3000)])
    sizes = np.array([CRIU_COST_MODEL.sample_size(rng) for _ in range(3000)])
    assert latencies.max() <= 22.36
    assert sizes.max() <= 43.75e6
    assert latencies.mean() > 1.0  # CRIU is much heavier than native


def test_cost_model_for_domain():
    assert cost_model_for_domain("supervised") is SUPERVISED_COST_MODEL
    assert cost_model_for_domain("reinforcement") is CRIU_COST_MODEL
    with pytest.raises(ValueError, match="unknown domain"):
        cost_model_for_domain("quantum")


def test_snapshot_serialized_size():
    snapshot = Snapshot(
        job_id="j0",
        epoch=3,
        state={"weights": np.zeros(100)},
        size_bytes=1234.0,
        latency=0.1,
    )
    assert snapshot.serialized_size_bytes > 800  # ~100 float64s


def test_serialized_size_measured_at_pinned_protocol():
    """Sizes must be comparable across interpreter versions: the
    protocol is pinned to HIGHEST_PROTOCOL and recorded on the snapshot
    so archived measurements can be interpreted later."""
    assert SNAPSHOT_PICKLE_PROTOCOL == pickle.HIGHEST_PROTOCOL
    state = {"weights": np.arange(64.0), "epoch": 7}
    snapshot = Snapshot(
        job_id="j1", epoch=7, state=state, size_bytes=0.0, latency=0.0
    )
    assert snapshot.pickle_protocol == SNAPSHOT_PICKLE_PROTOCOL
    expected = len(pickle.dumps(state, protocol=SNAPSHOT_PICKLE_PROTOCOL))
    assert snapshot.serialized_size_bytes == expected


@pytest.mark.parametrize("model", [SUPERVISED_COST_MODEL, CRIU_COST_MODEL])
def test_lognormal_samples_positive_and_capped(model):
    rng = np.random.default_rng(42)
    latencies = np.array([model.sample_latency(rng) for _ in range(2000)])
    sizes = np.array([model.sample_size(rng) for _ in range(2000)])
    assert (latencies > 0).all()
    assert latencies.max() <= model.latency_max
    assert (sizes > 0).all()
    assert sizes.max() <= model.size_max
    # The median parameter really is the distribution's median.
    assert np.median(latencies) == pytest.approx(model.latency_median, rel=0.15)
    assert np.median(sizes) == pytest.approx(model.size_median, rel=0.15)


def test_quantile_ordering_validation_rejects_each_inversion():
    # p95 above max
    with pytest.raises(ValueError, match="latency"):
        SnapshotCostModel(0.1, 0.5, 0.4, 1.0, 2.0, 3.0)
    with pytest.raises(ValueError, match="size"):
        SnapshotCostModel(0.1, 0.2, 0.3, 1.0, 5.0, 4.0)
    # non-positive median
    with pytest.raises(ValueError, match="latency"):
        SnapshotCostModel(0.0, 0.2, 0.3, 1.0, 2.0, 3.0)
    with pytest.raises(ValueError, match="size"):
        SnapshotCostModel(0.1, 0.2, 0.3, -1.0, 2.0, 3.0)
