"""Tests for the in-process message bus."""

from __future__ import annotations

import threading

import pytest

from repro.framework.transport import MessageBus


def test_send_requires_subscriber():
    bus = MessageBus()
    with pytest.raises(KeyError, match="no subscriber"):
        bus.send("nowhere", "ping", None, sender="test")


def test_point_to_point_delivery():
    bus = MessageBus()
    mailbox = bus.subscribe("scheduler")
    bus.send("scheduler", "app_stat", {"metric": 0.5}, sender="machine-00")
    message = mailbox.get(timeout=0.1)
    assert message is not None
    assert message.kind == "app_stat"
    assert message.payload == {"metric": 0.5}
    assert message.sender == "machine-00"
    assert bus.messages_delivered == 1


def test_subscribe_idempotent():
    bus = MessageBus()
    assert bus.subscribe("a") is bus.subscribe("a")


def test_fifo_ordering_and_drain():
    bus = MessageBus()
    mailbox = bus.subscribe("m")
    for i in range(5):
        bus.send("m", "tick", i, sender="t")
    drained = mailbox.drain()
    assert [m.payload for m in drained] == [0, 1, 2, 3, 4]
    assert mailbox.drain() == []
    assert mailbox.pending == 0


def test_get_timeout_returns_none():
    bus = MessageBus()
    mailbox = bus.subscribe("m")
    assert mailbox.get(timeout=0.01) is None


def test_concurrent_senders():
    bus = MessageBus()
    mailbox = bus.subscribe("sink")

    def sender(tag):
        for i in range(50):
            bus.send("sink", "msg", (tag, i), sender=tag)

    threads = [threading.Thread(target=sender, args=(f"t{k}",)) for k in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    received = mailbox.drain()
    assert len(received) == 200
    # Per-sender FIFO preserved.
    for tag in ("t0", "t1", "t2", "t3"):
        seq = [m.payload[1] for m in received if m.payload[0] == tag]
        assert seq == sorted(seq)
