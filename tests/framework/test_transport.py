"""Tests for the in-process message bus."""

from __future__ import annotations

import threading

import pytest

from repro.framework.transport import MessageBus


def test_send_requires_subscriber():
    bus = MessageBus()
    with pytest.raises(KeyError, match="no subscriber"):
        bus.send("nowhere", "ping", None, sender="test")


def test_point_to_point_delivery():
    bus = MessageBus()
    mailbox = bus.subscribe("scheduler")
    bus.send("scheduler", "app_stat", {"metric": 0.5}, sender="machine-00")
    message = mailbox.get(timeout=0.1)
    assert message is not None
    assert message.kind == "app_stat"
    assert message.payload == {"metric": 0.5}
    assert message.sender == "machine-00"
    assert bus.messages_delivered == 1


def test_subscribe_idempotent():
    bus = MessageBus()
    assert bus.subscribe("a") is bus.subscribe("a")


def test_fifo_ordering_and_drain():
    bus = MessageBus()
    mailbox = bus.subscribe("m")
    for i in range(5):
        bus.send("m", "tick", i, sender="t")
    drained = mailbox.drain()
    assert [m.payload for m in drained] == [0, 1, 2, 3, 4]
    assert mailbox.drain() == []
    assert mailbox.pending == 0


def test_get_timeout_returns_none():
    bus = MessageBus()
    mailbox = bus.subscribe("m")
    assert mailbox.get(timeout=0.01) is None


def test_concurrent_senders():
    bus = MessageBus()
    mailbox = bus.subscribe("sink")

    def sender(tag):
        for i in range(50):
            bus.send("sink", "msg", (tag, i), sender=tag)

    threads = [threading.Thread(target=sender, args=(f"t{k}",)) for k in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    received = mailbox.drain()
    assert len(received) == 200
    # Per-sender FIFO preserved.
    for tag in ("t0", "t1", "t2", "t3"):
        seq = [m.payload[1] for m in received if m.payload[0] == tag]
        assert seq == sorted(seq)


def test_declare_topic_buffers_sends_before_consumer_subscribes():
    """Regression for the startup race: a producer that fires before its
    consumer subscribes must not crash, and nothing may be lost — the
    consumer's later subscribe() returns the same mailbox with the early
    messages still queued in order."""
    bus = MessageBus()
    declared = bus.declare_topic("scheduler")
    bus.send("scheduler", "app_stat", {"epoch": 1}, sender="machine-00")
    bus.send("scheduler", "app_stat", {"epoch": 2}, sender="machine-00")

    mailbox = bus.subscribe("scheduler")  # consumer comes up late
    assert mailbox is declared
    assert [m.payload["epoch"] for m in mailbox.drain()] == [1, 2]


def test_drain_under_concurrent_producers_conserves_messages():
    """drain() racing live producers may split the stream across calls
    but must never drop or duplicate a message."""
    bus = MessageBus()
    mailbox = bus.subscribe("sink")
    n_producers, n_each = 4, 100
    done = threading.Event()

    def producer(tag):
        for i in range(n_each):
            bus.send("sink", "msg", (tag, i), sender=tag)

    threads = [
        threading.Thread(target=producer, args=(k,)) for k in range(n_producers)
    ]
    for t in threads:
        t.start()

    received = []
    collector_error = []

    def collector():
        try:
            while not done.is_set() or mailbox.pending:
                received.extend(mailbox.drain())
        except Exception as exc:  # pragma: no cover - surfaced via assert
            collector_error.append(exc)

    collecting = threading.Thread(target=collector)
    collecting.start()
    for t in threads:
        t.join()
    done.set()
    collecting.join(timeout=5.0)

    assert not collector_error
    assert len(received) == n_producers * n_each
    payloads = [m.payload for m in received]
    assert len(set(payloads)) == len(payloads)  # no duplicates
    for tag in range(n_producers):
        seq = [i for (who, i) in payloads if who == tag]
        assert seq == sorted(seq)  # per-sender FIFO survives draining


def test_export_metrics_publishes_delivery_and_depth_gauges():
    from repro.observability import Recorder

    bus = MessageBus()
    bus.subscribe("scheduler")
    bus.subscribe("machine-00")
    bus.send("scheduler", "app_stat", 1, sender="m")
    bus.send("scheduler", "app_stat", 2, sender="m")
    bus.send("machine-00", "start_job", None, sender="s")

    metrics = Recorder().metrics
    bus.export_metrics(metrics)
    assert metrics.get("bus_messages_delivered").value() == 3
    pending = metrics.get("bus_mailbox_pending")
    assert pending.value(topic="scheduler") == 2
    assert pending.value(topic="machine-00") == 1

    # Gauges are refreshed, not accumulated.
    bus.subscribe("scheduler").drain()
    bus.export_metrics(metrics)
    assert metrics.get("bus_mailbox_pending").value(topic="scheduler") == 0
