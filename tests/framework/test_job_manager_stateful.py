"""Stateful property-based test of the Job Manager.

Drives random sequences of queue/lifecycle operations and checks the
structural invariants that every scheduler in the repository relies
on.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.framework.job import Job, JobState
from repro.framework.job_manager import JobManager


class JobManagerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.jm = JobManager()
        self.counter = 0
        self.machine_counter = 0

    # ------------------------------------------------------------- helpers

    def _jobs_in(self, *states):
        return [job for job in self.jm.jobs() if job.state in states]

    # --------------------------------------------------------------- rules

    @rule()
    def add_job(self):
        job = Job(job_id=f"j{self.counter}", config={"i": self.counter})
        self.counter += 1
        self.jm.add_job(job)

    @rule(data=st.data())
    def start_idle_job(self, data):
        pending = self._jobs_in(JobState.PENDING)
        if not pending:
            return
        job = data.draw(st.sampled_from(pending))
        machine = f"m{self.machine_counter}"
        self.machine_counter += 1
        self.jm.start_job(job.job_id, machine)
        assert job.state is JobState.RUNNING
        assert job.machine_id == machine

    @rule(data=st.data())
    def suspend_running_job(self, data):
        running = self._jobs_in(JobState.RUNNING)
        if not running:
            return
        job = data.draw(st.sampled_from(running))
        self.jm.suspend_job(job.job_id)
        assert job.machine_id is None

    @rule(data=st.data())
    def resume_suspended_job(self, data):
        suspended = self._jobs_in(JobState.SUSPENDED)
        if not suspended:
            return
        job = data.draw(st.sampled_from(suspended))
        machine = f"m{self.machine_counter}"
        self.machine_counter += 1
        self.jm.resume_job(job.job_id, machine)
        assert job.state is JobState.RUNNING

    @rule(data=st.data())
    def terminate_live_job(self, data):
        live = self._jobs_in(
            JobState.PENDING, JobState.RUNNING, JobState.SUSPENDED
        )
        if not live:
            return
        job = data.draw(st.sampled_from(live))
        self.jm.terminate_job(job.job_id)
        assert not job.active

    @rule(data=st.data())
    def complete_running_job(self, data):
        running = self._jobs_in(JobState.RUNNING)
        if not running:
            return
        job = data.draw(st.sampled_from(running))
        self.jm.complete_job(job.job_id)

    @rule(data=st.data(), priority=st.floats(min_value=0.0, max_value=1.0))
    def label_some_job(self, data, priority):
        jobs = self.jm.jobs()
        if not jobs:
            return
        job = data.draw(st.sampled_from(jobs))
        self.jm.label_job(job.job_id, priority)
        assert job.priority == priority

    # ----------------------------------------------------------- invariants

    @invariant()
    def idle_queue_matches_states(self):
        """Exactly the PENDING and SUSPENDED jobs are idle."""
        idle_ids = {job.job_id for job in self.jm.idle_jobs()}
        expected = {
            job.job_id
            for job in self._jobs_in(JobState.PENDING, JobState.SUSPENDED)
        }
        assert idle_ids == expected
        assert self.jm.num_idle == len(expected)

    @invariant()
    def get_idle_job_is_queue_head(self):
        head = self.jm.get_idle_job()
        ordered = self.jm.idle_jobs()
        if ordered:
            assert head is ordered[0]
        else:
            assert head is None

    @invariant()
    def labelled_idle_jobs_sorted_first(self):
        ordered = self.jm.idle_jobs()
        labels = [job.priority is not None for job in ordered]
        # all labelled jobs precede all unlabelled ones
        assert labels == sorted(labels, reverse=True)
        labelled = [j.priority for j in ordered if j.priority is not None]
        assert labelled == sorted(labelled, reverse=True)

    @invariant()
    def running_jobs_have_machines(self):
        for job in self.jm.running_jobs():
            assert job.machine_id is not None

    @invariant()
    def terminal_jobs_not_idle(self):
        for job in self.jm.jobs():
            if not job.active:
                assert job.machine_id is None


TestJobManagerStateful = JobManagerMachine.TestCase
TestJobManagerStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
