"""Tests for the Node Agent."""

from __future__ import annotations

import numpy as np
import pytest

from repro.curves.predictor import LeastSquaresCurvePredictor
from repro.framework.node_agent import NodeAgent
from repro.framework.snapshot import SUPERVISED_COST_MODEL


@pytest.fixture()
def agent(cifar10_workload):
    return NodeAgent(
        machine_id="machine-00",
        workload=cifar10_workload,
        snapshot_cost_model=SUPERVISED_COST_MODEL,
        predictor=LeastSquaresCurvePredictor(
            n_sample_curves=20, restarts=1, model_names=("pow3", "weibull")
        ),
        seed=0,
    )


@pytest.fixture()
def config(cifar10_workload):
    rng = np.random.default_rng(5)
    return cifar10_workload.space.sample(rng)


def test_assign_and_train(agent, config):
    assert not agent.busy
    agent.assign("j0", config, seed=0)
    assert agent.busy
    assert agent.job_id == "j0"
    result = agent.train_epoch()
    assert result.epoch == 1
    assert len(agent.curve_history) == 1
    assert 0.0 <= agent.curve_history[0] <= 1.0


def test_double_assign_rejected(agent, config):
    agent.assign("j0", config)
    with pytest.raises(RuntimeError, match="already hosts"):
        agent.assign("j1", config)


def test_train_without_job_rejected(agent):
    with pytest.raises(RuntimeError, match="no job assigned"):
        agent.train_epoch()


def test_snapshot_without_job_rejected(agent):
    with pytest.raises(RuntimeError, match="no job to snapshot"):
        agent.capture_snapshot()


def test_snapshot_resume_on_other_agent(agent, config, cifar10_workload):
    agent.assign("j0", config, seed=0)
    first = [agent.train_epoch().metric for _ in range(5)]
    snapshot = agent.capture_snapshot()
    assert snapshot.epoch == 5
    assert snapshot.latency > 0 and snapshot.size_bytes > 0
    assert snapshot.state["curve_history"] == agent.curve_history
    agent.release()

    other = NodeAgent(
        machine_id="machine-01",
        workload=cifar10_workload,
        snapshot_cost_model=SUPERVISED_COST_MODEL,
        seed=1,
    )
    other.assign("j0", config, seed=0, snapshot=snapshot)
    # Curve history travelled with the snapshot (§5.2).
    assert len(other.curve_history) == 5
    resumed = other.train_epoch()
    assert resumed.epoch == 6

    # A fresh uninterrupted run must produce the identical metric at
    # epoch 6: suspend/resume is bit-exact.
    control = NodeAgent(
        machine_id="machine-02",
        workload=cifar10_workload,
        snapshot_cost_model=SUPERVISED_COST_MODEL,
        seed=2,
    )
    control.assign("j0", config, seed=0)
    for _ in range(5):
        control.train_epoch()
    assert control.train_epoch().metric == pytest.approx(resumed.metric)


def test_snapshot_job_mismatch_rejected(agent, config):
    agent.assign("j0", config)
    agent.train_epoch()
    snapshot = agent.capture_snapshot()
    agent.release()
    with pytest.raises(ValueError, match="belongs to"):
        agent.assign("j1", config, snapshot=snapshot)


def test_release_clears_state(agent, config):
    agent.assign("j0", config)
    agent.train_epoch()
    agent.release()
    assert not agent.busy
    assert agent.curve_history == []
    assert agent.run is None


def test_local_prediction(agent, config):
    agent.assign("j0", config, seed=0)
    for _ in range(10):
        agent.train_epoch()
    prediction = agent.predict(20)
    assert prediction.samples.shape[1] == 20
    assert agent.predictions_made == 1


def test_prediction_requires_history(agent, config):
    agent.assign("j0", config)
    agent.train_epoch()
    with pytest.raises(ValueError, match="history too short"):
        agent.predict(10)


def test_prediction_requires_predictor(cifar10_workload, config):
    agent = NodeAgent(
        machine_id="m",
        workload=cifar10_workload,
        snapshot_cost_model=SUPERVISED_COST_MODEL,
    )
    agent.assign("j0", config)
    for _ in range(5):
        agent.train_epoch()
    with pytest.raises(RuntimeError, match="no predictor"):
        agent.predict(5)
