"""Tests for the Job Manager's queue and lifecycle API."""

from __future__ import annotations

import pytest

from repro.framework.job import Job, JobState
from repro.framework.job_manager import JobManager


def add(jm: JobManager, job_id: str) -> Job:
    job = Job(job_id=job_id, config={})
    jm.add_job(job)
    return job


@pytest.fixture()
def jm():
    return JobManager()


def test_add_and_get(jm):
    job = add(jm, "j0")
    assert jm.get("j0") is job
    with pytest.raises(KeyError, match="unknown job"):
        jm.get("nope")


def test_duplicate_rejected(jm):
    add(jm, "j0")
    with pytest.raises(ValueError, match="duplicate"):
        add(jm, "j0")


def test_add_requires_pending(jm):
    job = Job(job_id="x", config={})
    job.transition(JobState.RUNNING)
    with pytest.raises(ValueError, match="PENDING"):
        jm.add_job(job)


def test_fifo_order_without_priorities(jm):
    for i in range(3):
        add(jm, f"j{i}")
    assert jm.get_idle_job().job_id == "j0"
    jm.start_job("j0", "m0")
    assert jm.get_idle_job().job_id == "j1"


def test_priority_orders_ahead_of_fifo(jm):
    add(jm, "j0")
    add(jm, "j1")
    jm.label_job("j1", 0.8)
    assert jm.get_idle_job().job_id == "j1"
    # higher priority wins among labelled
    add(jm, "j2")
    jm.label_job("j2", 0.9)
    assert jm.get_idle_job().job_id == "j2"


def test_get_idle_job_is_non_destructive(jm):
    add(jm, "j0")
    assert jm.get_idle_job().job_id == "j0"
    assert jm.get_idle_job().job_id == "j0"
    assert jm.num_idle == 1


def test_start_resume_suspend_cycle(jm):
    job = add(jm, "j0")
    jm.start_job("j0", "m0")
    assert job.state is JobState.RUNNING
    assert job.machine_id == "m0"
    assert jm.num_idle == 0

    jm.suspend_job("j0")
    assert job.state is JobState.SUSPENDED
    assert job.machine_id is None
    assert jm.num_idle == 1

    jm.resume_job("j0", "m1")
    assert job.state is JobState.RUNNING
    assert job.machine_id == "m1"


def test_suspended_job_requeues_behind_fresh_fifo(jm):
    add(jm, "j0")
    add(jm, "j1")
    jm.start_job("j0", "m0")
    jm.suspend_job("j0")
    # j1 was enqueued earlier, so FIFO puts it first now.
    assert jm.get_idle_job().job_id == "j1"


def test_start_requires_pending_state(jm):
    add(jm, "j0")
    jm.start_job("j0", "m0")
    jm.suspend_job("j0")
    with pytest.raises(ValueError, match="use resume_job"):
        jm.start_job("j0", "m0")


def test_resume_requires_suspended_state(jm):
    add(jm, "j0")
    with pytest.raises(ValueError, match="cannot be resumed"):
        jm.resume_job("j0", "m0")


def test_terminate_removes_from_queue(jm):
    add(jm, "j0")
    jm.terminate_job("j0")
    assert jm.num_idle == 0
    assert jm.get_idle_job() is None
    assert not jm.get("j0").active


def test_terminate_running_job(jm):
    job = add(jm, "j0")
    jm.start_job("j0", "m0")
    jm.terminate_job("j0")
    assert job.state is JobState.TERMINATED
    assert job.machine_id is None


def test_complete_job(jm):
    job = add(jm, "j0")
    jm.start_job("j0", "m0")
    jm.complete_job("j0")
    assert job.state is JobState.COMPLETED


def test_active_and_running_listings(jm):
    add(jm, "j0")
    add(jm, "j1")
    add(jm, "j2")
    jm.start_job("j0", "m0")
    jm.terminate_job("j2")
    assert {j.job_id for j in jm.active_jobs()} == {"j0", "j1"}
    assert [j.job_id for j in jm.running_jobs()] == ["j0"]
    assert len(jm.jobs()) == 3


def test_idle_jobs_sorted(jm):
    add(jm, "a")
    add(jm, "b")
    add(jm, "c")
    jm.label_job("c", 0.5)
    ordered = [j.job_id for j in jm.idle_jobs()]
    assert ordered == ["c", "a", "b"]
