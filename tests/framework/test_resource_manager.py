"""Tests for the Resource Manager."""

from __future__ import annotations

import pytest

from repro.framework.resource_manager import ResourceManager


def test_reserve_release_cycle():
    rm = ResourceManager(2)
    assert rm.num_machines == 2
    assert rm.num_idle == 2
    first = rm.reserve_idle_machine()
    second = rm.reserve_idle_machine()
    assert {first, second} == set(rm.machine_ids)
    assert rm.reserve_idle_machine() is None
    assert rm.num_busy == 2
    rm.release_machine(first)
    assert rm.num_idle == 1
    assert rm.reserve_idle_machine() == first


def test_release_unreserved_rejected():
    rm = ResourceManager(1)
    with pytest.raises(ValueError, match="not reserved"):
        rm.release_machine("machine-00")


def test_is_busy():
    rm = ResourceManager(1)
    assert not rm.is_busy("machine-00")
    rm.reserve_idle_machine()
    assert rm.is_busy("machine-00")
    with pytest.raises(ValueError, match="unknown machine"):
        rm.is_busy("machine-99")


def test_needs_at_least_one_machine():
    with pytest.raises(ValueError, match="at least one"):
        ResourceManager(0)


def test_machine_ids_stable():
    rm = ResourceManager(3)
    assert rm.machine_ids == ["machine-00", "machine-01", "machine-02"]


# ----------------------------------------------------------- elasticity


def test_shrink_drains_idle_machines_immediately():
    rm = ResourceManager(4)
    drained = rm.set_target_capacity(2)
    assert len(drained) == 2
    assert rm.target_capacity == 2
    assert rm.num_in_service == 2
    assert rm.num_drained == 2
    assert rm.num_idle == 2
    for machine_id in drained:
        assert rm.is_drained(machine_id)
    # Drained machines are not reservable.
    assert rm.reserve_idle_machine() is not None
    assert rm.reserve_idle_machine() is not None
    assert rm.reserve_idle_machine() is None


def test_busy_machine_drains_on_release_when_over_target():
    rm = ResourceManager(2)
    first = rm.reserve_idle_machine()
    second = rm.reserve_idle_machine()
    assert rm.set_target_capacity(1) == []  # nothing idle to drain now
    assert rm.num_in_service == 2  # busy machines keep serving...
    rm.release_machine(second)
    # ...and park in the drained set instead of going idle.
    assert rm.is_drained(second)
    assert rm.num_in_service == 1
    rm.release_machine(first)
    assert not rm.is_drained(first)
    assert rm.num_idle == 1


def test_grow_restores_drained_machines():
    rm = ResourceManager(3)
    rm.set_target_capacity(1)
    assert rm.num_in_service == 1
    rm.set_target_capacity(3)
    assert rm.num_in_service == 3
    assert rm.num_drained == 0
    assert rm.num_idle == 3


def test_target_capacity_clamps_to_pool_size():
    rm = ResourceManager(2)
    rm.set_target_capacity(10)
    assert rm.target_capacity == 2
    with pytest.raises(ValueError, match=">= 0"):
        rm.set_target_capacity(-1)


def test_in_service_excludes_failed_and_drained():
    rm = ResourceManager(4)
    rm.set_target_capacity(3)
    rm.fail_machine("machine-00")
    assert rm.num_in_service == 2
    rm.recover_machine("machine-00")
    assert rm.num_in_service == 3


def test_recover_parks_in_drained_when_at_target():
    rm = ResourceManager(2)
    rm.fail_machine("machine-01")
    rm.set_target_capacity(1)
    # Already at target: the recovered machine waits in the drained
    # set rather than re-entering service.
    rm.recover_machine("machine-01")
    assert rm.num_in_service == 1
    assert rm.is_drained("machine-01")
    rm.set_target_capacity(2)
    assert rm.num_in_service == 2


# ----------------------------------------------- targeted retirement


def test_retire_idle_machine_drains_now():
    rm = ResourceManager(3)
    assert rm.retire_machine("machine-01") is True
    assert rm.is_drained("machine-01")
    assert rm.num_in_service == 2
    assert not rm.is_retiring("machine-01")


def test_retire_busy_machine_drains_on_release():
    rm = ResourceManager(2)
    machine_id = rm.reserve_idle_machine()
    assert rm.retire_machine(machine_id) is False
    assert rm.is_retiring(machine_id)
    assert rm.num_in_service == 2  # still serving until released
    rm.release_machine(machine_id)
    # Drains even though the pool is under its target capacity: the
    # retirement targeted this specific machine.
    assert rm.is_drained(machine_id)
    assert not rm.is_retiring(machine_id)
    assert rm.num_in_service == 1


def test_retire_is_idempotent_on_drained_machines():
    rm = ResourceManager(2)
    rm.retire_machine("machine-01")
    assert rm.retire_machine("machine-01") is True
    assert rm.num_drained == 1


def test_retire_failed_machine_rejected():
    rm = ResourceManager(2)
    rm.fail_machine("machine-01")
    with pytest.raises(ValueError, match="has failed"):
        rm.retire_machine("machine-01")
    with pytest.raises(ValueError, match="unknown machine"):
        rm.retire_machine("machine-99")


def test_quarantined_machine_survives_capacity_grow():
    rm = ResourceManager(3)
    rm.retire_machine("machine-01", quarantine=True)
    assert rm.is_quarantined("machine-01")
    rm.set_target_capacity(3)
    # The grow resurrects nothing it was told is going away for good.
    assert rm.is_drained("machine-01")
    assert rm.num_in_service == 2


def test_grow_resurrects_plain_drained_but_not_quarantined():
    rm = ResourceManager(4)
    rm.retire_machine("machine-00", quarantine=True)
    rm.set_target_capacity(1)  # drains the rest of the idle pool
    assert rm.num_in_service == 1
    rm.set_target_capacity(4)
    assert rm.num_in_service == 3  # everyone back except the spot node
    assert rm.is_drained("machine-00")


def test_failure_clears_retiring_and_recovery_clears_quarantine():
    rm = ResourceManager(2)
    machine_id = rm.reserve_idle_machine()
    rm.retire_machine(machine_id, quarantine=True)
    rm.fail_machine(machine_id)
    assert not rm.is_retiring(machine_id)
    rm.recover_machine(machine_id)
    # A recovered machine is a fresh instance: no quarantine carryover.
    assert not rm.is_quarantined(machine_id)


# ------------------------------------------- grow/shrink/grow cycles


def test_repeated_grow_shrink_grow_cycles_leak_no_capacity():
    rm = ResourceManager(6)
    for _ in range(5):
        rm.set_target_capacity(2)
        assert rm.num_in_service == 2
        rm.set_target_capacity(6)
        assert rm.num_in_service == 6
        assert rm.num_idle == 6
        assert rm.num_drained == 0


def test_cycles_with_busy_machines_are_lossless():
    rm = ResourceManager(4)
    busy = [rm.reserve_idle_machine() for _ in range(3)]
    rm.set_target_capacity(1)
    assert rm.num_in_service == 3  # busy machines drain only on release
    rm.release_machine(busy[0])
    assert rm.is_drained(busy[0])
    assert rm.num_in_service == 2
    rm.set_target_capacity(4)
    assert rm.num_in_service == 4
    assert rm.num_busy == 2
    rm.release_machine(busy[1])
    rm.release_machine(busy[2])
    assert rm.num_idle == 4
    assert rm.num_drained == 0


def test_cycles_preserve_reservation_capacity():
    rm = ResourceManager(3)
    for _ in range(3):
        rm.set_target_capacity(1)
        rm.set_target_capacity(3)
        reserved = []
        while True:
            machine_id = rm.reserve_idle_machine()
            if machine_id is None:
                break
            reserved.append(machine_id)
        assert len(reserved) == 3  # every cycle can still fill the pool
        for machine_id in reserved:
            rm.release_machine(machine_id)


def test_drained_machines_sorted_and_visible():
    rm = ResourceManager(4)
    rm.retire_machine("machine-03")
    rm.retire_machine("machine-01")
    assert rm.drained_machines == ["machine-01", "machine-03"]
