"""Tests for the Resource Manager."""

from __future__ import annotations

import pytest

from repro.framework.resource_manager import ResourceManager


def test_reserve_release_cycle():
    rm = ResourceManager(2)
    assert rm.num_machines == 2
    assert rm.num_idle == 2
    first = rm.reserve_idle_machine()
    second = rm.reserve_idle_machine()
    assert {first, second} == set(rm.machine_ids)
    assert rm.reserve_idle_machine() is None
    assert rm.num_busy == 2
    rm.release_machine(first)
    assert rm.num_idle == 1
    assert rm.reserve_idle_machine() == first


def test_release_unreserved_rejected():
    rm = ResourceManager(1)
    with pytest.raises(ValueError, match="not reserved"):
        rm.release_machine("machine-00")


def test_is_busy():
    rm = ResourceManager(1)
    assert not rm.is_busy("machine-00")
    rm.reserve_idle_machine()
    assert rm.is_busy("machine-00")
    with pytest.raises(ValueError, match="unknown machine"):
        rm.is_busy("machine-99")


def test_needs_at_least_one_machine():
    with pytest.raises(ValueError, match="at least one"):
        ResourceManager(0)


def test_machine_ids_stable():
    rm = ResourceManager(3)
    assert rm.machine_ids == ["machine-00", "machine-01", "machine-02"]
