"""Tests for the AppStat database."""

from __future__ import annotations

from repro.framework.appstat_db import AppStatDB
from repro.framework.events import AppStat
from repro.framework.snapshot import Snapshot


def stat(job_id, epoch, metric=0.5):
    return AppStat(
        job_id=job_id,
        epoch=epoch,
        metric=metric,
        duration=60.0,
        timestamp=epoch * 60.0,
        machine_id="machine-00",
    )


def snap(job_id, epoch=5):
    return Snapshot(
        job_id=job_id,
        epoch=epoch,
        state={"epoch": epoch},
        size_bytes=1000.0,
        latency=0.1,
    )


def test_record_and_query_stats():
    db = AppStatDB()
    db.record_stat(stat("j0", 1, 0.2))
    db.record_stat(stat("j0", 2, 0.3))
    db.record_stat(stat("j1", 1, 0.9))
    assert db.metric_history("j0") == [0.2, 0.3]
    assert db.metric_history("j1") == [0.9]
    assert db.metric_history("unknown") == []
    assert set(db.job_ids()) == {"j0", "j1"}
    assert [s.epoch for s in db.stats_for("j0")] == [1, 2]


def test_stats_for_returns_copy():
    db = AppStatDB()
    db.record_stat(stat("j0", 1))
    stats = db.stats_for("j0")
    stats.clear()
    assert len(db.stats_for("j0")) == 1


def test_snapshot_store_latest_wins():
    db = AppStatDB()
    db.save_snapshot(snap("j0", epoch=5))
    db.save_snapshot(snap("j0", epoch=10))
    loaded = db.load_snapshot("j0")
    assert loaded is not None and loaded.epoch == 10
    assert len(db.snapshot_log) == 2


def test_drop_snapshot():
    db = AppStatDB()
    db.save_snapshot(snap("j0"))
    db.drop_snapshot("j0")
    assert db.load_snapshot("j0") is None
    db.drop_snapshot("j0")  # idempotent
    # the log retains history for overhead analysis
    assert len(db.snapshot_log) == 1


def test_load_missing_snapshot():
    assert AppStatDB().load_snapshot("j0") is None
