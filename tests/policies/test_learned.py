"""Learned SAP serving: artifact resolution and end-to-end scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import standard_configs
from repro.framework.experiment import ExperimentSpec
from repro.learn.agent import PolicyNetwork
from repro.learn.artifact import (
    ARTIFACT_ENV_VAR,
    PRETRAINED_PATH,
    make_artifact,
    write_artifact,
)
from repro.learn.features import FEATURE_NAMES
from repro.observability.recorder import Recorder
from repro.policies.learned import LearnedPolicy, RandomInitLearnedPolicy
from repro.registry import build_policy
from repro.sim.runner import run_simulation


def _write_tiny_artifact(path, seed=9):
    net = PolicyNetwork(len(FEATURE_NAMES), hidden=4, seed=seed)
    write_artifact(
        str(path),
        make_artifact(
            weights=net.weights_dict(),
            hidden=4,
            provenance={"trainer": {"seed": seed}},
        ),
    )
    return str(path)


class TestArtifactResolution:
    def test_default_is_committed_pretrained(self, monkeypatch):
        monkeypatch.delenv(ARTIFACT_ENV_VAR, raising=False)
        policy = LearnedPolicy()
        assert policy.artifact_path == PRETRAINED_PATH

    def test_env_var_overrides_pretrained(self, monkeypatch, tmp_path):
        path = _write_tiny_artifact(tmp_path / "env.json")
        monkeypatch.setenv(ARTIFACT_ENV_VAR, path)
        policy = LearnedPolicy()
        assert policy.artifact_path == path
        assert policy.net.hidden == 4

    def test_constructor_path_wins(self, monkeypatch, tmp_path):
        env_path = _write_tiny_artifact(tmp_path / "env.json", seed=9)
        ctor_path = _write_tiny_artifact(tmp_path / "ctor.json", seed=10)
        monkeypatch.setenv(ARTIFACT_ENV_VAR, env_path)
        policy = LearnedPolicy(artifact_path=ctor_path)
        assert policy.artifact_path == ctor_path

    def test_bad_env_artifact_raises(self, monkeypatch, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"format\": \"nope\"}")
        monkeypatch.setenv(ARTIFACT_ENV_VAR, str(bad))
        with pytest.raises(ValueError, match="repro-learned-policy"):
            LearnedPolicy()

    def test_random_control_ignores_artifacts(self, monkeypatch, tmp_path):
        path = _write_tiny_artifact(tmp_path / "env.json")
        monkeypatch.setenv(ARTIFACT_ENV_VAR, path)
        policy = RandomInitLearnedPolicy()
        assert policy.artifact_path is None
        reference = PolicyNetwork(len(FEATURE_NAMES), hidden=16, seed=0)
        np.testing.assert_array_equal(
            policy.net.params["W1"], reference.params["W1"]
        )

    def test_registry_builds_both(self, monkeypatch):
        monkeypatch.delenv(ARTIFACT_ENV_VAR, raising=False)
        assert build_policy("learned").name == "learned"
        assert build_policy("learned-random").name == "learned-random"


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def result(self, cifar10_workload):
        recorder = Recorder()
        outcome = run_simulation(
            cifar10_workload,
            LearnedPolicy(),
            configs=standard_configs(cifar10_workload, 8),
            spec=ExperimentSpec(num_machines=3, num_configs=8, seed=0),
            recorder=recorder,
        )
        return outcome, recorder

    def test_simulation_completes(self, result, cifar10_workload):
        outcome, _ = result
        assert outcome.epochs_trained > 0
        if outcome.reached_target:
            assert (
                outcome.best_metric >= cifar10_workload.domain.target
            )

    def test_decisions_audited_with_rationale(self, result):
        _, recorder = result
        decisions = [
            record for record in recorder.audit.records
            if record.kind == "sap_decision"
        ]
        assert decisions
        # Non-boundary epochs audit a bare CONTINUE; eval-window
        # decisions carry the policy's rationale.
        noted = [
            record for record in decisions if "action" in record.data
        ]
        assert noted
        for record in noted:
            assert record.data["action"] in (
                "kill", "suspend", "continue"
            )
            assert record.data["artifact"] == PRETRAINED_PATH
            assert isinstance(record.data["score"], float)

    def test_deterministic_replay(self, cifar10_workload):
        outcomes = [
            run_simulation(
                cifar10_workload,
                LearnedPolicy(),
                configs=standard_configs(cifar10_workload, 6),
                spec=ExperimentSpec(num_machines=2, num_configs=6, seed=1),
            )
            for _ in range(2)
        ]
        assert outcomes[0].time_to_target == outcomes[1].time_to_target
        assert outcomes[0].epochs_trained == outcomes[1].epochs_trained
        assert outcomes[0].best_metric == outcomes[1].best_metric
