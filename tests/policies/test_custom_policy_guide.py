"""The docs/extending.md example policy, tested end-to-end.

Keeps the guide honest: if the documented extension pattern breaks,
this test breaks.
"""

from __future__ import annotations

from repro.analysis.experiments import standard_configs
from repro.framework.events import Decision, IterationFinished
from repro.framework.experiment import ExperimentSpec
from repro.framework.job import JobState
from repro.policies.base import DefaultAllocationMixin, SchedulingPolicy
from repro.sim.runner import run_simulation


class PatiencePolicy(DefaultAllocationMixin, SchedulingPolicy):
    """Kill a job when it hasn't improved for `patience` epochs."""

    name = "patience"

    def __init__(self, patience: int = 15):
        super().__init__()
        self.patience = patience
        self._best = {}

    def application_stat(self, stat):
        value = self.ctx.domain.normalize(stat.metric)
        best, _ = self._best.get(stat.job_id, (-1.0, 0))
        if value > best:
            self._best[stat.job_id] = (value, stat.epoch)

    def on_iteration_finish(self, event: IterationFinished) -> Decision:
        _, best_epoch = self._best.get(event.job_id, (0.0, event.epoch))
        if event.epoch - best_epoch > self.patience:
            return Decision.TERMINATE
        return Decision.CONTINUE


def test_patience_policy_runs_and_prunes(cifar10_workload):
    configs = standard_configs(cifar10_workload, 15)
    result = run_simulation(
        cifar10_workload,
        PatiencePolicy(patience=10),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=3, num_configs=15, seed=0, stop_on_target=False
        ),
    )
    terminated = [j for j in result.jobs if j.state is JobState.TERMINATED]
    completed = [j for j in result.jobs if j.state is JobState.COMPLETED]
    # Non-learners plateau immediately -> terminated by patience.
    assert terminated
    # Saturating learners stop improving near the end; most finish or
    # die late, but good learners survive well past the non-learners.
    assert max(j.epochs_completed for j in result.jobs) > 40
    assert result.epochs_trained < 15 * 120


def test_patience_policy_keeps_improving_jobs(cifar10_workload):
    configs = standard_configs(cifar10_workload, 15)
    result = run_simulation(
        cifar10_workload,
        PatiencePolicy(patience=40),
        configs=configs,
        spec=ExperimentSpec(
            num_machines=3, num_configs=15, seed=0, stop_on_target=False
        ),
    )
    # A lenient patience lets the best configuration train long.
    best_job = max(result.jobs, key=lambda j: j.best_metric or 0.0)
    assert best_job.epochs_completed >= 60
