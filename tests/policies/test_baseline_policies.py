"""Unit tests for the Default, Bandit, and EarlyTerm SAPs."""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest

from repro.curves.predictor import CurvePrediction
from repro.framework.appstat_db import AppStatDB
from repro.framework.events import AppStat, Decision, IterationFinished
from repro.framework.job import Job, JobState
from repro.framework.job_manager import JobManager
from repro.framework.policy_api import PolicyContext
from repro.framework.resource_manager import ResourceManager
from repro.policies.bandit import BanditPolicy
from repro.policies.default import DefaultPolicy
from repro.policies.earlyterm import EarlyTermPolicy
from repro.workloads.base import DomainSpec

SL_DOMAIN = DomainSpec(
    kind="supervised",
    metric_name="validation_accuracy",
    target=0.77,
    kill_threshold=0.15,
    random_performance=0.10,
    max_epochs=120,
    eval_boundary=10,
)

RL_DOMAIN = DomainSpec(
    kind="reinforcement",
    metric_name="reward",
    target=200.0,
    kill_threshold=-100.0,
    random_performance=-200.0,
    max_epochs=200,
    eval_boundary=20,
    r_min=-500.0,
    r_max=300.0,
)


class Harness:
    def __init__(self, domain=SL_DOMAIN, machines=4):
        self.jm = JobManager()
        self.rm = ResourceManager(machines)
        self.started = []
        self.predictions: Dict[str, CurvePrediction] = {}
        self.ctx = PolicyContext(
            job_manager=self.jm,
            resource_manager=self.rm,
            appstat_db=AppStatDB(),
            domain=domain,
            tmax=48 * 3600.0,
            target=domain.target,
            now=lambda: 0.0,
            start=self._start,
            predict=lambda job_id, n: self.predictions[job_id],
        )

    def _start(self, job_id, machine_id):
        job = self.jm.get(job_id)
        if job.state is JobState.PENDING:
            self.jm.start_job(job_id, machine_id)
        else:
            self.jm.resume_job(job_id, machine_id)
        self.started.append((job_id, machine_id))

    def add_job(self, job_id):
        self.jm.add_job(Job(job_id=job_id, config={}))

    def stat(self, job_id, epoch, metric):
        return AppStat(job_id, epoch, metric, 60.0, epoch * 60.0, "machine-00")

    def event(self, job_id, epoch, metric):
        return IterationFinished(job_id, epoch, metric, 0.0, "machine-00", False)


# ------------------------------------------------------------- Default


def test_default_always_continues():
    harness = Harness()
    policy = DefaultPolicy()
    policy.bind(harness.ctx)
    for epoch in (1, 10, 100):
        assert (
            policy.on_iteration_finish(harness.event("j", epoch, 0.1))
            is Decision.CONTINUE
        )


def test_default_greedy_allocation():
    harness = Harness(machines=2)
    policy = DefaultPolicy()
    policy.bind(harness.ctx)
    for i in range(5):
        harness.add_job(f"j{i}")
    policy.allocate_jobs()
    assert [s[0] for s in harness.started] == ["j0", "j1"]
    assert harness.rm.num_idle == 0


def test_unbound_policy_raises():
    with pytest.raises(RuntimeError, match="not bound"):
        DefaultPolicy().allocate_jobs()


# -------------------------------------------------------------- Bandit


def test_bandit_tracks_bests():
    harness = Harness()
    policy = BanditPolicy()
    policy.bind(harness.ctx)
    policy.application_stat(harness.stat("a", 1, 0.6))
    policy.application_stat(harness.stat("a", 2, 0.4))
    policy.application_stat(harness.stat("b", 1, 0.7))
    assert policy.global_best == pytest.approx(0.7)
    assert policy._job_best["a"] == pytest.approx(0.6)


def test_bandit_kill_rule():
    harness = Harness()
    policy = BanditPolicy(epsilon=0.5)
    policy.bind(harness.ctx)
    policy.application_stat(harness.stat("good", 1, 0.9))
    policy.application_stat(harness.stat("bad", 1, 0.5))
    # 0.5 * 1.5 = 0.75 < 0.9 -> kill at boundary
    assert (
        policy.on_iteration_finish(harness.event("bad", 10, 0.5))
        is Decision.TERMINATE
    )
    # 0.9 * 1.5 > 0.9 -> survive
    assert (
        policy.on_iteration_finish(harness.event("good", 10, 0.9))
        is Decision.CONTINUE
    )


def test_bandit_only_acts_on_boundaries():
    harness = Harness()
    policy = BanditPolicy()
    policy.bind(harness.ctx)
    policy.application_stat(harness.stat("good", 1, 0.9))
    policy.application_stat(harness.stat("bad", 1, 0.1))
    assert (
        policy.on_iteration_finish(harness.event("bad", 9, 0.1))
        is Decision.CONTINUE
    )


def test_bandit_continues_before_any_stats():
    harness = Harness()
    policy = BanditPolicy()
    policy.bind(harness.ctx)
    assert (
        policy.on_iteration_finish(harness.event("j", 10, 0.1))
        is Decision.CONTINUE
    )


def test_bandit_rl_uses_normalized_rewards():
    harness = Harness(domain=RL_DOMAIN)
    policy = BanditPolicy()
    policy.bind(harness.ctx)
    policy.application_stat(harness.stat("good", 1, 150.0))  # norm 0.8125
    policy.application_stat(harness.stat("bad", 1, -180.0))  # norm 0.4
    # 0.4 * 1.5 = 0.6 < 0.8125 -> kill despite both rewards "negative-ish"
    assert (
        policy.on_iteration_finish(harness.event("bad", 20, -180.0))
        is Decision.TERMINATE
    )


def test_bandit_boundary_defaults():
    harness = Harness(domain=RL_DOMAIN)
    policy = BanditPolicy()
    policy.bind(harness.ctx)
    assert policy.eval_boundary == 20
    assert BanditPolicy(eval_boundary=7)._eval_boundary == 7
    with pytest.raises(ValueError, match="epsilon"):
        BanditPolicy(epsilon=-0.1)


# ----------------------------------------------------------- EarlyTerm


def _prediction(final_level: float) -> CurvePrediction:
    return CurvePrediction(
        observed=np.array([0.1]),
        horizon=np.arange(31, 121),
        samples=np.full((20, 90), final_level),
    )


def test_earlyterm_kills_predicted_losers():
    harness = Harness()
    policy = EarlyTermPolicy()
    policy.bind(harness.ctx)
    policy.application_stat(harness.stat("best", 1, 0.8))
    harness.predictions["loser"] = _prediction(0.5)
    assert (
        policy.on_iteration_finish(harness.event("loser", 30, 0.4))
        is Decision.TERMINATE
    )


def test_earlyterm_keeps_contenders():
    harness = Harness()
    policy = EarlyTermPolicy()
    policy.bind(harness.ctx)
    policy.application_stat(harness.stat("best", 1, 0.8))
    harness.predictions["contender"] = _prediction(0.85)
    assert (
        policy.on_iteration_finish(harness.event("contender", 30, 0.5))
        is Decision.CONTINUE
    )


def test_earlyterm_boundary_is_30_for_supervised():
    harness = Harness()
    policy = EarlyTermPolicy()
    policy.bind(harness.ctx)
    assert policy.eval_boundary == 30
    policy.application_stat(harness.stat("best", 1, 0.9))
    harness.predictions["j"] = _prediction(0.0)
    # epoch 10 is not a boundary for EarlyTerm -> continue, no predict
    assert (
        policy.on_iteration_finish(harness.event("j", 10, 0.1))
        is Decision.CONTINUE
    )


def test_earlyterm_rl_boundary_follows_domain():
    harness = Harness(domain=RL_DOMAIN)
    policy = EarlyTermPolicy()
    policy.bind(harness.ctx)
    assert policy.eval_boundary == 20


def test_earlyterm_continues_before_any_stats():
    harness = Harness()
    policy = EarlyTermPolicy()
    policy.bind(harness.ctx)
    assert (
        policy.on_iteration_finish(harness.event("j", 30, 0.2))
        is Decision.CONTINUE
    )


def test_earlyterm_delta_validation():
    with pytest.raises(ValueError, match="delta"):
        EarlyTermPolicy(delta=0.0)
