"""Tests for the successive-halving SAP (end-to-end via simulation)."""

from __future__ import annotations

import pytest

from repro.framework.experiment import ExperimentSpec
from repro.framework.job import JobState
from repro.policies.hyperband import SuccessiveHalvingPolicy
from repro.sim.runner import run_simulation
from repro.analysis.experiments import standard_configs


def test_constructor_validation():
    with pytest.raises(ValueError, match="eta"):
        SuccessiveHalvingPolicy(eta=1.0)
    with pytest.raises(ValueError, match="initial_budget"):
        SuccessiveHalvingPolicy(initial_budget=0)


def test_successive_halving_eliminates_most_configs(cifar10_workload):
    configs = standard_configs(cifar10_workload, 18)
    policy = SuccessiveHalvingPolicy(eta=3.0, initial_budget=4)
    result = run_simulation(
        cifar10_workload,
        policy,
        configs=configs,
        spec=ExperimentSpec(
            num_machines=3, num_configs=18, seed=0, stop_on_target=False
        ),
    )
    # After rung 0 at most ceil(18/3)=6 survive, then 2, then 1.
    terminated = [j for j in result.jobs if j.state is JobState.TERMINATED]
    assert len(terminated) >= 12
    # Epochs spent must be far below exhaustive (18 x 120).
    assert result.epochs_trained < 18 * 120 / 3


def test_survivors_trained_longer_than_losers(cifar10_workload):
    configs = standard_configs(cifar10_workload, 9)
    policy = SuccessiveHalvingPolicy(eta=3.0, initial_budget=4)
    result = run_simulation(
        cifar10_workload,
        policy,
        configs=configs,
        spec=ExperimentSpec(
            num_machines=3, num_configs=9, seed=0, stop_on_target=False
        ),
    )
    by_state = {}
    for job in result.jobs:
        by_state.setdefault(job.state, []).append(job.epochs_completed)
    survivors = by_state.get(JobState.COMPLETED, []) + [
        max(epochs for epochs in by_state.get(JobState.TERMINATED, [0]))
    ]
    losers = sorted(by_state.get(JobState.TERMINATED, []))
    assert max(survivors) > losers[0]
    # rung budgets: losers killed at 4 or 12 epochs
    assert losers[0] <= 12


def test_best_survivor_quality(cifar10_workload):
    """The surviving config should be among the better ones."""
    configs = standard_configs(cifar10_workload, 12)
    finals = [
        cifar10_workload.create_run(c, seed=0).true_final_accuracy
        for c in configs
    ]
    policy = SuccessiveHalvingPolicy(eta=2.0, initial_budget=6)
    result = run_simulation(
        cifar10_workload,
        policy,
        configs=configs,
        spec=ExperimentSpec(
            num_machines=4, num_configs=12, seed=0, stop_on_target=False
        ),
    )
    longest = max(result.jobs, key=lambda j: j.epochs_completed)
    index = int(longest.job_id.split("-")[1])
    # The most-trained config is in the top half of true quality.
    assert finals[index] >= sorted(finals)[len(finals) // 2]
