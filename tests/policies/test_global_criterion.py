"""Tests for the global-criterion SAP wrapper (§9 Ongoing Work)."""

from __future__ import annotations

import pytest

from repro.framework.experiment import ExperimentSpec
from repro.policies.default import DefaultPolicy
from repro.policies.global_criterion import GlobalCriterionPolicy
from repro.sim.runner import run_simulation
from repro.workloads.lstm_sparsity import LSTMSparsityWorkload
from repro.generators.random_gen import RandomGenerator


@pytest.fixture(scope="module")
def workload():
    return LSTMSparsityWorkload()


@pytest.fixture(scope="module")
def configs(workload):
    generator = RandomGenerator(workload.space, seed=5, max_configs=40)
    return [generator.create_job()[1] for _ in range(40)]


def test_name_defaults_to_inner():
    policy = GlobalCriterionPolicy(DefaultPolicy(), lambda stat: False)
    assert policy.name == "default+criterion"
    named = GlobalCriterionPolicy(DefaultPolicy(), lambda s: False, name="x")
    assert named.name == "x"


def test_criterion_stops_experiment(workload, configs):
    def sparse_and_accurate(stat):
        return (
            stat.metric >= 0.85
            and stat.extras.get("sparsity", 0.0) >= 0.35
        )

    policy = GlobalCriterionPolicy(DefaultPolicy(), sparse_and_accurate)
    result = run_simulation(
        workload,
        policy,
        configs=configs,
        spec=ExperimentSpec(
            num_machines=8,
            num_configs=len(configs),
            seed=0,
            stop_on_target=False,  # only the criterion may stop it
        ),
    )
    assert policy.satisfied_by is not None
    stat = policy.satisfied_by
    assert stat.metric >= 0.85
    assert stat.extras["sparsity"] >= 0.35
    assert result.reached_target
    assert result.time_to_target is not None
    # The experiment stopped early: far fewer epochs than exhaustive.
    assert result.epochs_trained < len(configs) * workload.domain.max_epochs


def test_never_satisfied_criterion_runs_to_completion(workload, configs):
    policy = GlobalCriterionPolicy(DefaultPolicy(), lambda stat: False)
    result = run_simulation(
        workload,
        policy,
        configs=configs[:6],
        spec=ExperimentSpec(
            num_machines=3, num_configs=6, seed=0, stop_on_target=False
        ),
    )
    assert policy.satisfied_by is None
    assert not result.reached_target
    assert result.epochs_trained == 6 * workload.domain.max_epochs


def test_inner_decisions_still_apply(workload, configs):
    """The wrapper must delegate scheduling to the inner SAP."""
    from repro.policies.bandit import BanditPolicy

    policy = GlobalCriterionPolicy(BanditPolicy(), lambda stat: False)
    result = run_simulation(
        workload,
        policy,
        configs=configs,
        spec=ExperimentSpec(
            num_machines=8,
            num_configs=len(configs),
            seed=0,
            stop_on_target=False,
        ),
    )
    assert result.terminated_count > 0  # bandit eliminations happened
