"""Tests for the full HyperBand policy (multi-bracket extension)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import standard_configs
from repro.framework.experiment import ExperimentSpec
from repro.framework.job import JobState
from repro.policies.hyperband import HyperBandPolicy
from repro.sim.runner import run_simulation


def test_constructor_validation():
    with pytest.raises(ValueError, match="eta"):
        HyperBandPolicy(eta=0.9)


def _run(workload, n_configs=24, machines=4, **kwargs):
    configs = standard_configs(workload, n_configs)
    policy = HyperBandPolicy(**kwargs)
    result = run_simulation(
        workload,
        policy,
        configs=configs,
        spec=ExperimentSpec(
            num_machines=machines,
            num_configs=n_configs,
            seed=0,
            stop_on_target=False,
        ),
    )
    return result, policy


def test_hyperband_processes_every_job(cifar10_workload):
    result, _ = _run(cifar10_workload)
    for job in result.jobs:
        assert job.state in (JobState.COMPLETED, JobState.TERMINATED)
        assert job.epochs_completed > 0


def test_hyperband_builds_multiple_brackets(cifar10_workload):
    result, policy = _run(cifar10_workload)
    assert policy._brackets is not None
    assert len(policy._brackets) >= 2
    # Brackets partition the jobs.
    all_ids = set()
    for ids, _ in policy._brackets:
        assert not (all_ids & ids)
        all_ids |= ids
    assert len(all_ids) == len(result.jobs)
    # Earlier brackets start with smaller budgets.
    budgets = [r0 for _, r0 in policy._brackets]
    assert budgets == sorted(budgets)


def test_hyperband_cheaper_than_exhaustive(cifar10_workload):
    result, _ = _run(cifar10_workload)
    exhaustive = 24 * cifar10_workload.domain.max_epochs
    assert result.epochs_trained < exhaustive / 2


def test_hyperband_finds_good_config(cifar10_workload):
    configs = standard_configs(cifar10_workload, 24)
    finals = [
        cifar10_workload.create_run(c, seed=0).true_final_accuracy
        for c in configs
    ]
    result, _ = _run(cifar10_workload)
    # The best explored metric is near the pool's true best.
    assert result.best_metric >= sorted(finals)[-4] - 0.05
