"""Tests for statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import (
    bootstrap_mean_ci,
    box_stats,
    ecdf,
    minmax_denormalize,
    minmax_normalize,
    paired_bootstrap_speedup_ci,
    speedup,
)


def test_minmax_normalize_paper_values():
    """Eq. 4 with the paper's r_min=-500, r_max=300."""
    values = minmax_normalize([-500.0, -100.0, 300.0])
    np.testing.assert_allclose(values, [0.0, 0.5, 1.0])


def test_minmax_clips_out_of_range():
    values = minmax_normalize([-900.0, 900.0])
    np.testing.assert_allclose(values, [0.0, 1.0])


def test_minmax_roundtrip():
    raw = np.array([-450.0, 0.0, 250.0])
    back = minmax_denormalize(minmax_normalize(raw))
    np.testing.assert_allclose(back, raw)


def test_minmax_validation():
    with pytest.raises(ValueError):
        minmax_normalize([0.0], r_min=1.0, r_max=1.0)
    with pytest.raises(ValueError):
        minmax_denormalize([0.5], r_min=1.0, r_max=0.0)


def test_ecdf_basic():
    values, fractions = ecdf([3.0, 1.0, 2.0])
    np.testing.assert_allclose(values, [1.0, 2.0, 3.0])
    np.testing.assert_allclose(fractions, [1 / 3, 2 / 3, 1.0])


def test_ecdf_empty_rejected():
    with pytest.raises(ValueError):
        ecdf([])


def test_box_stats():
    stats = box_stats([1.0, 2.0, 3.0, 4.0, 100.0])
    assert stats.minimum == 1.0
    assert stats.median == 3.0
    assert stats.maximum == 100.0
    assert stats.spread == 99.0
    assert stats.mean == pytest.approx(22.0)
    with pytest.raises(ValueError):
        box_stats([])


def test_bootstrap_ci_contains_mean():
    rng_values = np.random.default_rng(0).normal(10.0, 2.0, size=200)
    mean, low, high = bootstrap_mean_ci(rng_values, confidence=0.95)
    assert low < mean < high
    assert low < 10.0 < high
    assert high - low < 2.0


def test_bootstrap_validation():
    with pytest.raises(ValueError):
        bootstrap_mean_ci([], confidence=0.95)
    with pytest.raises(ValueError):
        bootstrap_mean_ci([1.0], confidence=1.5)


def test_speedup():
    assert speedup([100.0, 110.0], [50.0, 55.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        speedup([10.0], [0.0])


def test_paired_speedup_ci_point_and_coverage():
    rng = np.random.default_rng(3)
    improved = rng.uniform(90.0, 110.0, size=60)
    baseline = 1.6 * improved + rng.normal(0.0, 4.0, size=60)
    point, low, high = paired_bootstrap_speedup_ci(
        baseline, improved, rng=np.random.default_rng(0)
    )
    assert point == pytest.approx(
        float(np.mean(baseline)) / float(np.mean(improved))
    )
    assert low <= point <= high
    assert 1.5 < low and high < 1.7


def test_paired_speedup_ci_deterministic_for_fixed_rng():
    baseline, improved = [100.0, 120.0, 90.0], [50.0, 61.0, 47.0]
    first = paired_bootstrap_speedup_ci(
        baseline, improved, rng=np.random.default_rng(7)
    )
    second = paired_bootstrap_speedup_ci(
        baseline, improved, rng=np.random.default_rng(7)
    )
    assert first == second


def test_paired_speedup_ci_preserves_pairing():
    # Common-mode noise: each pair shares a large per-replicate offset.
    # A paired bootstrap stays tight around 2.0x regardless.
    rng = np.random.default_rng(11)
    offsets = rng.uniform(50.0, 500.0, size=40)
    improved = offsets
    baseline = 2.0 * offsets
    point, low, high = paired_bootstrap_speedup_ci(
        baseline, improved, rng=np.random.default_rng(1)
    )
    assert (point, low, high) == pytest.approx((2.0, 2.0, 2.0))


def test_paired_speedup_ci_validation():
    with pytest.raises(ValueError, match="equally long"):
        paired_bootstrap_speedup_ci([1.0, 2.0], [1.0])
    with pytest.raises(ValueError, match="equally long"):
        paired_bootstrap_speedup_ci([[1.0]], [[1.0]])
    with pytest.raises(ValueError):
        paired_bootstrap_speedup_ci([], [])
    with pytest.raises(ValueError):
        paired_bootstrap_speedup_ci([1.0], [0.0])
    with pytest.raises(ValueError):
        paired_bootstrap_speedup_ci([1.0], [1.0], confidence=0.0)


@given(
    st.lists(
        st.floats(min_value=-499.0, max_value=299.0), min_size=1, max_size=50
    )
)
@settings(max_examples=50, deadline=None)
def test_normalize_always_in_unit_interval(values):
    out = minmax_normalize(values)
    assert np.all((out >= 0.0) & (out <= 1.0))
    # weakly order-preserving for in-range values (ties may collapse
    # in floating point, but the ordering never inverts)
    order = np.argsort(values, kind="stable")
    assert np.all(np.diff(out[order]) >= 0.0)


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60)
)
@settings(max_examples=50, deadline=None)
def test_ecdf_properties(values):
    sorted_values, fractions = ecdf(values)
    assert np.all(np.diff(sorted_values) >= 0)
    assert np.all(np.diff(fractions) > 0)
    assert fractions[-1] == 1.0
