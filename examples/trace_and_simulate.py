#!/usr/bin/env python
"""Trace-driven simulation and order-sensitivity (§7).

Records a replayable trace of 40 CIFAR-10 configurations, then replays
it under several random configuration orders to show how strongly each
policy's time-to-target depends on luck of the ordering — the paper's
Fig 12c experiment in miniature.  Traces round-trip through JSON, so a
live recording can be archived and re-simulated later.

Usage::

    python examples/trace_and_simulate.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path


from repro import (
    BanditPolicy,
    Cifar10Workload,
    DefaultPolicy,
    ExperimentSpec,
    POPPolicy,
    run_simulation,
)
from repro.analysis import standard_configs
from repro.sim import Trace, TraceWorkload, record_trace

N_ORDERS = 5


def main() -> None:
    workload = Cifar10Workload()
    configs = standard_configs(workload, 40)

    print("recording trace (40 configs x 120 epochs) ...")
    trace = record_trace(workload, configs, seed=0)

    # Traces persist: archive and reload.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cifar10.trace.json"
        trace.save(path)
        trace = Trace.load(path)
        print(f"trace archived and reloaded ({path.stat().st_size/1e6:.1f} MB)")
    print()

    policies = {
        "pop": POPPolicy,
        "bandit": BanditPolicy,
        "default": DefaultPolicy,
    }
    print(f"replaying {N_ORDERS} random configuration orders on 5 machines:")
    print(f"{'policy':8s} | " + " ".join(f"ord{k}" for k in range(N_ORDERS))
          + "  spread  (minutes)")
    for name, factory in policies.items():
        times = []
        for order in range(N_ORDERS):
            shuffled = trace.shuffled(order)
            result = run_simulation(
                TraceWorkload(shuffled),
                factory(),
                configs=shuffled.configs,
                spec=ExperimentSpec(num_machines=5, num_configs=40, seed=0),
            )
            value = (
                result.time_to_target
                if result.reached_target
                else result.finished_at
            )
            times.append(value / 60.0)
        spread = max(times) - min(times)
        print(
            f"{name:8s} | "
            + " ".join(f"{t:4.0f}" for t in times)
            + f"  {spread:6.0f}"
        )
    print()
    print("POP's spread across orders is the tightest: it recovers from")
    print("unlucky orderings by predicting and prioritising late-positioned")
    print("good configurations (paper Fig 12c).")


if __name__ == "__main__":
    main()
