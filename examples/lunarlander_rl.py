#!/usr/bin/env python
"""Reinforcement-learning exploration: the LunarLander workload.

Demonstrates the RL-specific machinery from §6.3: min-max reward
normalisation (eq. 4), the "solved" condition (mean reward 200 over 100
consecutive trials — one epoch here), the −100 crash kill-threshold,
and the learning-crash phenomenon POP's predictions must survive.

Usage::

    python examples/lunarlander_rl.py
"""

from __future__ import annotations

import numpy as np

from repro import ExperimentSpec, LunarLanderWorkload, POPPolicy, run_simulation
from repro.analysis import standard_configs


def main() -> None:
    workload = LunarLanderWorkload()
    domain = workload.domain
    configs = standard_configs(workload, 60)

    print("LunarLander: reward normalisation (eq. 4)")
    for reward in (-500.0, -100.0, 0.0, 200.0, 300.0):
        print(f"  reward {reward:6.0f} -> normalised {domain.normalize(reward):.3f}")
    print()

    # Peek at the population the scheduler faces.
    solvers = crashes = 0
    for config in configs:
        run = workload.create_run(config, seed=0)
        solvers += run.is_solver
        curve = run._true_curve
        if curve.max() > 0 and curve[-1] <= -100:
            crashes += 1
    print(
        f"population of {len(configs)} configs: {solvers} solvers, "
        f"{crashes} learning-crashes, rest non-learning/partial"
    )
    print()

    result = run_simulation(
        workload,
        POPPolicy(),
        configs=configs,
        spec=ExperimentSpec(num_machines=15, num_configs=len(configs), seed=0),
    )
    if result.reached_target:
        print(
            f"solved (mean reward >= 200 over one 100-trial window) after "
            f"{result.time_to_target/60:.0f} simulated minutes"
        )
    else:
        print(f"not solved; best mean reward {result.best_metric:.0f}")
    print(f"episodes simulated: {result.epochs_trained * 100}")
    print(f"jobs killed early : {result.terminated_count}")

    # Show the winner's reward trajectory.
    winner = next(j for j in result.jobs if j.job_id == result.best_job_id)
    rewards = winner.metrics
    marks = np.linspace(0, len(rewards) - 1, min(12, len(rewards))).astype(int)
    print()
    print("winning configuration's reward trajectory:")
    print("  trials :", " ".join(f"{(m+1)*100:>6d}" for m in marks))
    print("  reward :", " ".join(f"{rewards[m]:6.0f}" for m in marks))


if __name__ == "__main__":
    main()
