#!/usr/bin/env python
"""Broker vs sequential FIFO: is sharing one slot pool worth it?

Boots a real in-process experiment daemon twice per seed — once as a
strict sequential FIFO (one worker, each experiment owns the full
machine ask) and once as a multi-tenant pop-broker (one worker per
experiment, all leasing from a shared slot pool with cross-experiment
POP) — submits the same batch of simulated experiments to both, and
reports the paired-bootstrap speedup on aggregate time-to-target.

Usage::

    python examples/broker_vs_fifo.py [--seeds 0 1 2] [--slots 4]
        [--experiments 3] [--configs 8] [--json]

The defaults finish in a couple of minutes on a laptop; scale
``--seeds``/``--configs`` up for tighter confidence intervals.
"""

from __future__ import annotations

import argparse
import json

from repro.broker.study import broker_vs_fifo, render_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2],
        help="scenario seeds; each yields one FIFO/broker pair",
    )
    parser.add_argument(
        "--slots", type=int, default=4,
        help="shared pool size P (and each submission's machine ask)",
    )
    parser.add_argument(
        "--experiments", type=int, default=3,
        help="concurrent submissions per scenario (one tenant each)",
    )
    parser.add_argument(
        "--configs", type=int, default=8,
        help="configurations per experiment",
    )
    parser.add_argument(
        "--tmax-hours", type=float, default=0.5,
        help="simulated horizon per experiment",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full report dict as JSON instead of markdown",
    )
    args = parser.parse_args()

    print(
        f"Running {len(args.seeds)} paired scenario(s): "
        f"{args.experiments} experiments x {args.configs} configs on a "
        f"{args.slots}-slot pool ..."
    )
    report = broker_vs_fifo(
        seeds=args.seeds,
        slots=args.slots,
        experiments=args.experiments,
        configs=args.configs,
        tmax_hours=args.tmax_hours,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print()
        print(render_report(report))


if __name__ == "__main__":
    main()
