#!/usr/bin/env python
"""Quickstart: hyperparameter exploration with POP on HyperDrive.

Runs the paper's supervised setup in miniature — the synthetic CIFAR-10
workload, 40 random configurations, 4 machines — under simulated time,
and prints how quickly POP finds a configuration reaching the 77%
validation-accuracy target compared with naive run-to-completion
scheduling.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Cifar10Workload,
    DefaultPolicy,
    ExperimentSpec,
    POPPolicy,
    RandomGenerator,
    run_simulation,
)
from repro.analysis import sparkline


def main() -> None:
    workload = Cifar10Workload()
    spec = ExperimentSpec(num_machines=4, num_configs=40, seed=0)

    print("Exploring 40 CIFAR-10 configurations on 4 machines ...")
    print(f"target validation accuracy: {workload.domain.target:.2f}")
    print()

    for policy in (DefaultPolicy(), POPPolicy()):
        # Same generator seed => both policies see the same configs.
        generator = RandomGenerator(workload.space, seed=17, max_configs=40)
        result = run_simulation(workload, policy, generator=generator, spec=spec)
        if result.reached_target:
            headline = f"reached target in {result.time_to_target/3600:.1f} h"
        else:
            headline = f"did NOT reach target (best {result.best_metric:.3f})"
        print(f"{policy.name:8s}: {headline}")
        print(
            f"          epochs trained: {result.epochs_trained}, "
            f"jobs terminated early: {result.terminated_count}, "
            f"suspends: {len(result.snapshots)}"
        )
        winner = next(
            job for job in result.jobs if job.job_id == result.best_job_id
        )
        print(f"          winner's curve: {sparkline(winner.metrics, width=50)}")

    print()
    print("POP reaches the target with a fraction of the training epochs by")
    print("killing non-learners early and prioritising configurations whose")
    print("predicted curves are likely to hit the target (see DESIGN.md).")


if __name__ == "__main__":
    main()
