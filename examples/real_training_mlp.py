#!/usr/bin/env python
"""Real training under HyperDrive: a numpy MLP on the live runtime.

Everything here is genuine: the Bayesian Hyperparameter Generator
proposes configurations, Node Agent threads run actual mini-batch SGD,
POP suspends/resumes real optimiser state across "machines", and the
learning-curve predictor extrapolates real validation-accuracy curves.
This is the framework-agnosticism demo (§4.1): the scheduler cannot
tell this numpy network from the paper's Caffe CNN.

Usage::

    python examples/real_training_mlp.py
"""

from __future__ import annotations

from repro import BayesianGenerator, ExperimentSpec, MLPWorkload, POPPolicy
from repro.runtime import run_live
from repro.workloads.datasets import make_blobs


def main() -> None:
    dataset = make_blobs(
        n_samples=1200, n_features=16, n_classes=6, cluster_std=2.0, seed=7
    )
    workload = MLPWorkload(dataset=dataset, max_epochs=30, target=0.80)
    generator = BayesianGenerator(
        workload.space, seed=3, warmup=6, max_configs=24
    )
    spec = ExperimentSpec(num_machines=3, num_configs=24, seed=0)

    print("Live hyperparameter exploration: numpy MLP on 6-class blobs")
    print(f"target validation accuracy: {workload.domain.target:.2f}")
    print(f"random-guess accuracy     : {dataset.random_accuracy:.2f}")
    print()

    result = run_live(
        workload,
        POPPolicy(),
        generator=generator,
        spec=spec,
        time_scale=1e-4,  # 1 simulated minute ~ 6 ms wall
    )

    if result.reached_target:
        print(
            f"POP found a >= {workload.domain.target:.0%} configuration in "
            f"{result.time_to_target/60:.0f} simulated minutes"
        )
    else:
        print(f"best accuracy found: {result.best_metric:.3f}")
    print(f"epochs of real SGD executed : {result.epochs_trained}")
    print(f"jobs terminated early       : {result.terminated_count}")
    print(f"suspend/resume operations   : {len(result.snapshots)}")

    best_job = next(
        job for job in result.jobs if job.job_id == result.best_job_id
    )
    print()
    print("best configuration found:")
    for key, value in sorted(best_job.config.items()):
        print(f"  {key:14s} = {value}")


if __name__ == "__main__":
    main()
