#!/usr/bin/env python
"""Compare all four scheduling policies on the paper's two domains.

A miniature of the paper's Figures 7 and 9 expressed as a sweep-lab
study: time-to-target for POP, Bandit (TuPAQ), EarlyTerm (Domhan et
al.), and the Default SAP on CIFAR-10 and LunarLander, with paired
bootstrap confidence intervals against the POP baseline.

Usage::

    python examples/compare_policies.py [--out DIR] [--seeds 0,1]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.lab import StudySpec, run_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="study directory (resumable)")
    parser.add_argument("--seeds", default="0,1")
    args = parser.parse_args()

    spec = StudySpec(
        name="compare-policies",
        workloads=("cifar10", "lunarlander"),
        policies=("pop", "bandit", "earlyterm", "default"),
        seeds=tuple(int(s) for s in args.seeds.split(",")),
        compare_axis="policy",
        baseline={"policy": "pop"},
    )
    out = args.out or tempfile.mkdtemp(prefix="compare-policies-")
    print(run_study(spec, out), end="")
    print(f"\n(artifacts in {out} — rerun with --out {out} to reuse them)")


if __name__ == "__main__":
    main()
