#!/usr/bin/env python
"""Compare all four scheduling policies on the paper's two domains.

A miniature of the paper's Figures 7 and 9: time-to-target for POP,
Bandit (TuPAQ), EarlyTerm (Domhan et al.), and the Default SAP on the
supervised (CIFAR-10) and reinforcement-learning (LunarLander)
workloads, using the standard fixed configuration sets.

Usage::

    python examples/compare_policies.py [--repeats N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    BanditPolicy,
    DefaultPolicy,
    EarlyTermPolicy,
    POPPolicy,
)
from repro.analysis import (
    run_standard_experiment,
    standard_rl_workload,
    standard_sl_workload,
)

POLICIES = {
    "pop": POPPolicy,
    "bandit": BanditPolicy,
    "earlyterm": EarlyTermPolicy,
    "default": DefaultPolicy,
}


def compare(workload, label: str, repeats: int) -> None:
    print(f"--- {label} ---")
    print(f"{'policy':10s} {'mean t2t (min)':>15s} {'min':>6s} {'max':>6s}")
    baseline = None
    for name, factory in POLICIES.items():
        times = []
        for seed in range(repeats):
            result = run_standard_experiment(workload, factory(), seed=seed)
            times.append(
                result.time_to_target
                if result.reached_target
                else result.finished_at
            )
        mean = float(np.mean(times)) / 60.0
        if name == "pop":
            baseline = mean
        extra = "" if name == "pop" else f"   ({mean/baseline:.2f}x vs POP)"
        print(
            f"{name:10s} {mean:15.0f} {min(times)/60:6.0f} "
            f"{max(times)/60:6.0f}{extra}"
        )
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args()

    compare(standard_sl_workload(), "CIFAR-10 (supervised, 4 machines)",
            args.repeats)
    compare(standard_rl_workload(), "LunarLander (RL, 15 machines)",
            args.repeats)


if __name__ == "__main__":
    main()
