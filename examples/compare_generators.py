#!/usr/bin/env python
"""Compare hyperparameter generators behind the §4.2 HG shim.

The paper treats configuration *generation* as orthogonal, pluggable
machinery.  This example runs the built-in generator-shootout study:
random, grid, GP-EI, and TPE feed the same simulated MLP cluster under
the neutral Default policy, and the report compares the best metric
each reaches (paired per seed, bootstrap CIs vs the random baseline).

Usage::

    python examples/compare_generators.py [--out DIR] [--seeds 0,1,2]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.lab import builtin_study, run_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="study directory (resumable)")
    parser.add_argument("--seeds", default=None)
    args = parser.parse_args()

    spec = builtin_study("generator-shootout")
    if args.seeds:
        spec = spec.with_overrides(
            seeds=tuple(int(s) for s in args.seeds.split(","))
        )
    out = args.out or tempfile.mkdtemp(prefix="compare-generators-")
    print(run_study(spec, out), end="")
    print(f"\n(artifacts in {out} — rerun with --out {out} to reuse them)")


if __name__ == "__main__":
    main()
