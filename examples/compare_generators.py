#!/usr/bin/env python
"""Compare Hyperparameter Generators behind the §4.2 HG shim.

The paper treats configuration *generation* as orthogonal, pluggable
machinery (random/grid built in, Bayesian via a shim).  This example
runs random search, grid search, GP-EI, and TPE through the identical
HG API against the real-training MLP workload and reports the best
validation accuracy each finds with the same evaluation budget.

Usage::

    python examples/compare_generators.py
"""

from __future__ import annotations


from repro import (
    BayesianGenerator,
    GridGenerator,
    MLPWorkload,
    RandomGenerator,
)
from repro.generators import TPEGenerator
from repro.workloads.datasets import make_blobs

BUDGET = 30
TRAIN_EPOCHS = 12


def evaluate(workload: MLPWorkload, config: dict) -> float:
    """Train the configuration briefly; the final accuracy is the HG's
    reward signal (reportFinalPerformance in §4.2)."""
    run = workload.create_run(config, seed=0)
    metric = 0.0
    for _ in range(TRAIN_EPOCHS):
        metric = run.step().metric
    return metric


def main() -> None:
    dataset = make_blobs(
        n_samples=900, n_features=12, n_classes=8, cluster_std=3.0, seed=11
    )
    workload = MLPWorkload(dataset=dataset, max_epochs=TRAIN_EPOCHS)
    space = workload.space

    generators = {
        "random": RandomGenerator(space, seed=2),
        "grid": GridGenerator(space, resolution=2),
        "gp-ei": BayesianGenerator(space, seed=2, warmup=8),
        "tpe": TPEGenerator(space, seed=2, warmup=8),
    }

    print(f"budget: {BUDGET} configurations x {TRAIN_EPOCHS} real SGD epochs")
    print(f"{'generator':10s} {'best acc':>9s}  best-so-far trajectory")
    for name, generator in generators.items():
        best, trajectory = 0.0, []
        for _ in range(BUDGET):
            job_id, config = generator.create_job()
            accuracy = evaluate(workload, config)
            generator.report_final_performance(job_id, accuracy)
            best = max(best, accuracy)
            trajectory.append(best)
        marks = "".join(
            "▁▂▃▄▅▆▇█"[min(int(v * 8), 7)] for v in trajectory
        )
        print(f"{name:10s} {best:9.3f}  {marks}")

    print()
    print("Adaptive generators (GP-EI, TPE) concentrate their budget in the")
    print("promising region once warm-up observations arrive; grid search at")
    print("resolution 2 only probes the corners of an 8-D space.  On easy")
    print("landscapes random search stays competitive — which is exactly why")
    print("the paper treats generation and *scheduling* as separate levers.")


if __name__ == "__main__":
    main()
