#!/usr/bin/env python
"""Fixed-budget tournament: is budget-aware POP worth it?

Gives every policy the same machine-hour purse and asks which finds
the best model before the money runs out.  ``pop-budget`` spends the
purse deliberately — it narrows its promising pool to what the
remaining budget can sustain and prioritises configs by confidence per
expected remaining dollar; plain POP and HyperBand are time-aware but
cost-blind, so the lab harness hard-stops them at equal spend.

Runs the built-in ``budget-tournament`` study (pop-budget vs pop vs
hyperband, paired per seed) through the Sweep Lab and prints the
paired-bootstrap report: best metric at budget exhaustion, with 95%
CIs on each policy's delta against the POP baseline.

Usage::

    python examples/budget_study.py --out runs/budget-study
        [--budget-slot-hours 48] [--seeds 0 1 2] [--configs 24] [--json]

An existing ``--out`` directory resumes the study (completed cells are
content-addressed and skipped).  The defaults finish in a few minutes;
add seeds for tighter intervals.
"""

from __future__ import annotations

import argparse
import json

from repro.lab import analyze, builtin_study, render_json, run_study
from repro.lab.store import CellStore


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", required=True,
        help="study directory (existing directories resume)",
    )
    parser.add_argument(
        "--budget-slot-hours", type=float, default=48.0,
        help="machine-hour purse per cell (every policy gets the same)",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2],
        help="experiment seeds; each is one paired replicate",
    )
    parser.add_argument(
        "--configs", type=int, default=24,
        help="configurations per cell",
    )
    parser.add_argument(
        "--machines", type=int, default=4,
        help="cluster size per cell",
    )
    parser.add_argument(
        "--max-workers", type=int, default=None,
        help="cell fan-out processes (default: auto; 1 = inline)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the report dict as JSON instead of markdown",
    )
    args = parser.parse_args()

    spec = builtin_study("budget-tournament").with_overrides(
        budget_slot_hours=args.budget_slot_hours,
        seeds=tuple(args.seeds),
        num_configs=args.configs,
        machines=(args.machines,),
    )
    print(
        f"Fixed-budget tournament: {', '.join(spec.policies)} — "
        f"{args.budget_slot_hours:g} machine-hours per cell, "
        f"{len(spec.cells())} cells ..."
    )
    markdown = run_study(spec, args.out, max_workers=args.max_workers)
    if args.json:
        analysis = analyze(spec, CellStore(args.out))
        print(json.dumps(render_json(analysis), indent=2))
    else:
        print()
        print(markdown)


if __name__ == "__main__":
    main()
