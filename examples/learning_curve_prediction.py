#!/usr/bin/env python
"""The learning-curve predictor, standalone.

Shows what POP sees: given the first 20 epochs of a training curve,
the probabilistic model (11 parametric families) predicts the future,
and the achieve-by probabilities + expected remaining time (§3.1.1)
fall out.  Compares the fast least-squares backend with the full MCMC
backend and with the naive last-value baseline.

Usage::

    python examples/learning_curve_prediction.py
"""

from __future__ import annotations

import time


from repro import (
    Cifar10Workload,
    LastValuePredictor,
    LeastSquaresCurvePredictor,
    MCMCCurvePredictor,
    estimate_remaining_time,
)
from repro.analysis import standard_configs

OBSERVE = 20
TARGET = 0.77


def main() -> None:
    workload = Cifar10Workload()
    # Pick an achieving configuration so the prediction question is
    # interesting: will it reach 0.77, and when?
    config = next(
        c
        for c in standard_configs(workload, 100)
        if workload.create_run(c, seed=0).true_final_accuracy >= TARGET
    )
    run = workload.create_run(config, seed=0)
    curve = [run.step().metric for _ in range(workload.domain.max_epochs)]
    true_cross = next(
        (e for e, v in enumerate(curve, 1) if v >= TARGET), None
    )

    print(f"observed prefix ({OBSERVE} epochs): "
          + " ".join(f"{v:.2f}" for v in curve[:OBSERVE:4]))
    print(f"true final accuracy : {curve[-1]:.3f}")
    print(f"true epoch reaching {TARGET}: {true_cross}")
    print()

    predictors = {
        "least-squares ensemble": LeastSquaresCurvePredictor(seed=0),
        "MCMC ensemble (reduced)": MCMCCurvePredictor(
            n_walkers=40, n_samples=200, thin=5, seed=0,
            model_names=("pow3", "weibull", "mmf", "janoschek", "ilog2"),
        ),
        "last-value baseline": LastValuePredictor(seed=0),
    }
    horizon = workload.domain.max_epochs - OBSERVE
    for name, predictor in predictors.items():
        start = time.perf_counter()
        prediction = predictor.predict(curve[:OBSERVE], horizon)
        elapsed = time.perf_counter() - start
        estimate = estimate_remaining_time(
            prediction,
            target=TARGET,
            epoch_duration=60.0,
            time_remaining=48 * 3600.0,
        )
        print(f"{name} ({elapsed*1000:.0f} ms):")
        print(
            f"  predicted final: {prediction.mean[-1]:.3f} "
            f"± {prediction.std[-1]:.3f}"
        )
        print(
            f"  P(reach {TARGET} within budget) = {estimate.confidence:.2f}; "
            f"expected remaining ≈ "
            f"{estimate.expected_remaining_epochs:.0f} epochs"
        )
        print()

    print("The curve models see the rise and assign real probability to")
    print("reaching the target; the last-value baseline (what")
    print("instantaneous-accuracy schedulers assume) sees almost none.")


if __name__ == "__main__":
    main()
