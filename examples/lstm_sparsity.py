#!/usr/bin/env python
"""Multi-metric exploration with a global termination criterion (§9).

Reproduces the paper's "Ongoing Work": exploring the group-Lasso λ of
an LSTM language model while monitoring both perplexity (primary) and a
sparsity metric, and ending the whole experiment through a user-defined
global criterion the moment any configuration is simultaneously
accurate and sparse — "significantly reduced training times by enabling
user-defined global termination criteria through HyperDrive's SAP API".

Usage::

    python examples/lstm_sparsity.py
"""

from __future__ import annotations

from repro import ExperimentSpec, RandomGenerator, run_simulation
from repro.policies import DefaultPolicy, GlobalCriterionPolicy
from repro.workloads import LSTMSparsityWorkload

QUALITY_FLOOR = 0.85  # perplexity <= 120
SPARSITY_FLOOR = 0.35


def sparse_and_accurate(stat) -> bool:
    """The model owner's joint criterion over reported metrics."""
    return (
        stat.metric >= QUALITY_FLOOR
        and stat.extras.get("sparsity", 0.0) >= SPARSITY_FLOOR
    )


def main() -> None:
    workload = LSTMSparsityWorkload()
    print("LSTM language model + group Lasso (λ) exploration")
    print(f"joint goal: quality >= {QUALITY_FLOOR} "
          f"(perplexity <= {(1-QUALITY_FLOOR)*800:.0f}) "
          f"AND sparsity >= {SPARSITY_FLOOR}")
    print()

    for label, with_criterion in (
        ("without global criterion (run everything)", False),
        ("with global criterion (stop at first joint hit)", True),
    ):
        generator = RandomGenerator(workload.space, seed=5, max_configs=40)
        inner = DefaultPolicy()
        policy = (
            GlobalCriterionPolicy(inner, sparse_and_accurate)
            if with_criterion
            else inner
        )
        result = run_simulation(
            workload,
            policy,
            generator=generator,
            spec=ExperimentSpec(
                num_machines=8,
                num_configs=40,
                seed=0,
                stop_on_target=False,
            ),
        )
        hours = (result.time_to_target or result.finished_at) / 3600.0
        print(f"{label}:")
        print(f"  experiment time : {hours:5.1f} h")
        print(f"  epochs trained  : {result.epochs_trained}")
        if with_criterion and isinstance(policy, GlobalCriterionPolicy):
            stat = policy.satisfied_by
            assert stat is not None
            print(
                f"  satisfied by {stat.job_id} at epoch {stat.epoch}: "
                f"perplexity {stat.extras['perplexity']:.0f}, "
                f"sparsity {stat.extras['sparsity']:.2f}"
            )
        print()


if __name__ == "__main__":
    main()
